/**
 * @file
 * Generic set-associative tag store with pluggable replacement and an
 * optional payload per block. The I-cache instantiates it with no
 * payload; the BTB instantiates it with a branch-target payload.
 */

#ifndef GHRP_CACHE_CACHE_HH
#define GHRP_CACHE_CACHE_HH

#include <memory>
#include <optional>
#include <vector>

#include "cache/config.hh"
#include "cache/replacement.hh"
#include "cache/tag_search.hh"
#include "stats/efficiency.hh"
#include "stats/mpki.hh"
#include "util/bit_ops.hh"
#include "util/logging.hh"

namespace ghrp::cache
{

/** Result of one cache access. */
struct AccessOutcome
{
    bool hit = false;
    bool bypassed = false;      ///< miss whose fill was vetoed
    bool evicted = false;       ///< a valid block was displaced
    bool victimWasDead = false; ///< victim chosen by dead prediction
    Addr victimAddress = 0;
    std::uint32_t set = 0;
    std::uint32_t way = 0;      ///< hit way or fill way (if !bypassed)
};

/** Empty payload type for structures that only need tags (I-cache). */
struct NoPayload
{
};

/**
 * Set-associative cache model. Tag-store metadata is laid out
 * struct-of-arrays — one contiguous tag row per set plus a per-set
 * validity bitmask — so the lookup is a branch-light tag compare the
 * tag_search back ends (AVX2 where available, scalar otherwise) can
 * chew through without touching payloads or policy metadata.
 *
 * @tparam Payload per-block payload stored alongside the tag (e.g. the
 *         branch target for a BTB).
 */
template <typename Payload = NoPayload>
class CacheModel
{
  public:
    /**
     * @param config geometry.
     * @param policy replacement policy instance (owned).
     */
    CacheModel(const CacheConfig &config,
               std::unique_ptr<ReplacementPolicy> policy)
        : cfg(config), repl(std::move(policy)), sets(cfg.numSets()),
          ways(cfg.assoc), blockShift(floorLog2(cfg.blockBytes)),
          tags(static_cast<std::size_t>(sets) * ways, 0),
          payloads(static_cast<std::size_t>(sets) * ways),
          validMask(sets, 0), lastHitWay(sets, 0),
          search(activeTagSearch())
    {
        GHRP_ASSERT(repl != nullptr);
        GHRP_ASSERT(isPowerOf2(sets));
        GHRP_ASSERT(isPowerOf2(cfg.blockBytes));
        GHRP_ASSERT(ways <= 64);  // validity is one bitmask word per set
        repl->reset(sets, ways);
    }

    /** Block-granular address of @p addr. */
    Addr blockAddress(Addr addr) const { return addr >> blockShift; }

    /** Set index for @p addr (modulo indexing, as in the paper). */
    std::uint32_t
    setIndex(Addr addr) const
    {
        return static_cast<std::uint32_t>(blockAddress(addr) & (sets - 1));
    }

    /**
     * Perform one access.
     *
     * @param addr accessed address (any byte inside the block).
     * @param pc accessing instruction address (policy context).
     * @param payload payload to install on a fill / update on a hit.
     */
    AccessOutcome
    access(Addr addr, Addr pc, const Payload &payload = Payload{})
    {
        Payload previous{};
        return accessExchange(addr, pc, payload, previous);
    }

    /**
     * access() variant that additionally reports the payload the hit
     * entry held before the update. Lets callers that need the old
     * payload (the BTB's target-match check) avoid a separate probe()
     * — one tag search instead of two, identical state transitions.
     *
     * @param[out] previous on a hit, the payload before the update;
     *             untouched otherwise.
     */
    AccessOutcome
    accessExchange(Addr addr, Addr pc, const Payload &payload,
                   Payload &previous)
    {
        const std::uint64_t tick = ++tickCount;
        const Addr tag = blockAddress(addr);
        AccessInfo info{addr, pc, setIndex(addr), tick};

        AccessOutcome outcome;
        outcome.set = info.set;

        // --- lookup --------------------------------------------------
        // The search touches only the SoA tag row and validity mask
        // (no payloads, no policy metadata), so it stays a tight tag
        // compare; hit bookkeeping happens once, after the scan.
        const std::size_t row = static_cast<std::size_t>(info.set) * ways;
        const std::uint32_t hit_way =
            findWay(row, info.set, tag);
        if (hit_way != ways) {
            outcome.hit = true;
            outcome.way = hit_way;
            previous = payloads[row + hit_way];
            payloads[row + hit_way] = payload;
            stats.recordHit();
            repl->onHit(info, hit_way);
            if (tracker)
                tracker->onHit(info.set, hit_way, tick);
            return outcome;
        }

        // --- miss ----------------------------------------------------
        if (repl->shouldBypass(info)) {
            outcome.bypassed = true;
            stats.recordMiss(true);
            return outcome;
        }
        stats.recordMiss(false);

        const VictimChoice victim = claimFrame(info, tick);
        outcome.evicted = victim.evicted;
        outcome.victimWasDead = victim.wasDead;
        outcome.victimAddress = victim.victimAddress;

        validMask[info.set] |= std::uint64_t{1} << victim.way;
        tags[row + victim.way] = tag;
        payloads[row + victim.way] = payload;
        lastHitWay[info.set] = static_cast<std::uint8_t>(victim.way);
        outcome.way = victim.way;
        repl->onFill(info, victim.way);
        if (tracker)
            tracker->onFill(info.set, victim.way, tick);
        return outcome;
    }

    /**
     * Prefetch @p addr: fill it if absent, without touching the demand
     * hit/miss statistics (a separate prefetchFills counter is kept).
     * The replacement policy sees a normal fill; predicted-dead
     * prefetches are still subject to bypass. Prefetch hits do not
     * update recency (the block was not demanded).
     *
     * @return true when a fill happened.
     */
    bool
    prefetch(Addr addr, Addr pc)
    {
        if (probe(addr))
            return false;
        const std::uint64_t tick = ++tickCount;
        const Addr tag = blockAddress(addr);
        AccessInfo info{addr, pc, setIndex(addr), tick};

        if (repl->shouldBypass(info))
            return false;

        // Same victim-selection sequence as the demand path, via the
        // shared helper: dead-eviction state (lastVictimWasDead read
        // between chooseVictim and onEvict) and the eviction counters
        // are reported consistently for demand fills and prefetches.
        const VictimChoice victim = claimFrame(info, tick);
        const std::size_t row = static_cast<std::size_t>(info.set) * ways;
        validMask[info.set] |= std::uint64_t{1} << victim.way;
        tags[row + victim.way] = tag;
        payloads[row + victim.way] = Payload{};
        repl->onFill(info, victim.way);
        if (tracker)
            tracker->onFill(info.set, victim.way, tick);
        ++prefetchFillCount;
        return true;
    }

    /** Number of fills issued by prefetch(). */
    std::uint64_t prefetchFills() const { return prefetchFillCount; }

    /**
     * Probe without modifying any state (no recency update, no fill).
     * @return the way holding @p addr, if present.
     */
    std::optional<std::uint32_t>
    probe(Addr addr) const
    {
        const Addr tag = blockAddress(addr);
        const std::uint32_t set = setIndex(addr);
        const std::uint32_t way =
            findWay(static_cast<std::size_t>(set) * ways, set, tag);
        if (way != ways)
            return way;
        return std::nullopt;
    }

    /** Payload of the block holding @p addr (must be present). */
    const Payload &
    payloadAt(Addr addr, std::uint32_t way) const
    {
        const std::uint32_t set = setIndex(addr);
        GHRP_ASSERT((validMask[set] >> way) & 1u);
        return payloads[static_cast<std::size_t>(set) * ways + way];
    }

    /** Invalidate everything (keeps policy metadata sizing). */
    void
    invalidateAll()
    {
        for (std::uint64_t &vm : validMask)
            vm = 0;
    }

    /** Attach an efficiency tracker (not owned); nullptr detaches. */
    void attachTracker(stats::EfficiencyTracker *t) { tracker = t; }

    /** Reset hit/miss statistics (e.g. after warm-up). */
    void resetStats() { stats = stats::AccessStats{}; }

    const stats::AccessStats &accessStats() const { return stats; }
    const CacheConfig &config() const { return cfg; }
    ReplacementPolicy &policy() { return *repl; }
    const ReplacementPolicy &policy() const { return *repl; }
    std::uint32_t numSets() const { return sets; }
    std::uint32_t numWays() const { return ways; }
    std::uint64_t ticks() const { return tickCount; }

  private:
    /**
     * Locate @p tag in @p set, or return `ways` when absent. A per-set
     * hint remembers the way of the set's last hit: front-end streams
     * alternate between a handful of hot blocks per set, so one scalar
     * compare usually resolves the lookup without the full tag search.
     * Tags are unique within a set (fills only happen when the tag is
     * absent), so the hint can never disagree with the search — it is
     * purely a shortcut, never a semantic change.
     */
    std::uint32_t
    findWay(std::size_t row, std::uint32_t set, Addr tag) const
    {
        const std::uint32_t hint = lastHitWay[set];
        if (tags[row + hint] == tag &&
            ((validMask[set] >> hint) & 1u) != 0)
            return hint;
        const std::uint32_t way =
            search(&tags[row], validMask[set], ways, tag);
        if (way != ways)
            lastHitWay[set] = static_cast<std::uint8_t>(way);
        return way;
    }

    /** Outcome of claiming a frame for a fill. */
    struct VictimChoice
    {
        std::uint32_t way = 0;
        bool evicted = false;       ///< a valid block was displaced
        bool wasDead = false;       ///< victim chosen by dead prediction
        Addr victimAddress = 0;     ///< valid when evicted
    };

    /**
     * Claim a frame in info.set for a fill: the lowest invalid frame
     * when one exists (a single bit scan of the validity mask), else
     * the policy's victim. The eviction sequence — chooseVictim, then
     * lastVictimWasDead, then the eviction counters, then onEvict and
     * the tracker callback — is the single definition shared by
     * access() and prefetch(), so dead-eviction accounting cannot
     * drift between the demand and prefetch paths.
     */
    VictimChoice
    claimFrame(const AccessInfo &info, std::uint64_t tick)
    {
        VictimChoice choice;
        const std::uint64_t invalid =
            ~validMask[info.set] & mask(ways);
        if (invalid != 0) {
            choice.way =
                static_cast<std::uint32_t>(std::countr_zero(invalid));
            return choice;
        }
        choice.way = repl->chooseVictim(info);
        GHRP_ASSERT(choice.way < ways);
        choice.evicted = true;
        choice.wasDead = repl->lastVictimWasDead();
        choice.victimAddress =
            tags[static_cast<std::size_t>(info.set) * ways + choice.way]
            << blockShift;
        ++stats.evictions;
        if (choice.wasDead)
            ++stats.deadEvictions;
        repl->onEvict(info, choice.way, choice.victimAddress);
        if (tracker)
            tracker->onEvict(info.set, choice.way, tick);
        return choice;
    }

    CacheConfig cfg;
    std::unique_ptr<ReplacementPolicy> repl;
    std::uint32_t sets;
    std::uint32_t ways;
    unsigned blockShift;
    /** SoA tag store: tags[set * ways + way], payloads parallel, one
     *  validity bitmask word per set (bit w = way w valid). */
    std::vector<Addr> tags;
    std::vector<Payload> payloads;
    std::vector<std::uint64_t> validMask;
    /** Way of each set's most recent hit (see findWay). Mutable: a
     *  const probe() may still refresh the shortcut. */
    mutable std::vector<std::uint8_t> lastHitWay;
    TagSearchFn search;
    stats::AccessStats stats;
    stats::EfficiencyTracker *tracker = nullptr;
    std::uint64_t tickCount = 0;
    std::uint64_t prefetchFillCount = 0;
};

} // namespace ghrp::cache

#endif // GHRP_CACHE_CACHE_HH

/**
 * @file
 * Generic set-associative tag store with pluggable replacement and an
 * optional payload per block. The I-cache instantiates it with no
 * payload; the BTB instantiates it with a branch-target payload.
 */

#ifndef GHRP_CACHE_CACHE_HH
#define GHRP_CACHE_CACHE_HH

#include <memory>
#include <optional>
#include <vector>

#include "cache/config.hh"
#include "cache/replacement.hh"
#include "stats/efficiency.hh"
#include "stats/mpki.hh"
#include "util/bit_ops.hh"
#include "util/logging.hh"

namespace ghrp::cache
{

/** Result of one cache access. */
struct AccessOutcome
{
    bool hit = false;
    bool bypassed = false;      ///< miss whose fill was vetoed
    bool evicted = false;       ///< a valid block was displaced
    bool victimWasDead = false; ///< victim chosen by dead prediction
    Addr victimAddress = 0;
    std::uint32_t set = 0;
    std::uint32_t way = 0;      ///< hit way or fill way (if !bypassed)
};

/** Empty payload type for structures that only need tags (I-cache). */
struct NoPayload
{
};

/**
 * Set-associative cache model.
 *
 * @tparam Payload per-block payload stored alongside the tag (e.g. the
 *         branch target for a BTB).
 */
template <typename Payload = NoPayload>
class CacheModel
{
  public:
    /**
     * @param config geometry.
     * @param policy replacement policy instance (owned).
     */
    CacheModel(const CacheConfig &config,
               std::unique_ptr<ReplacementPolicy> policy)
        : cfg(config), repl(std::move(policy)), sets(cfg.numSets()),
          ways(cfg.assoc), blockShift(floorLog2(cfg.blockBytes)),
          lines(static_cast<std::size_t>(sets) * ways)
    {
        GHRP_ASSERT(repl != nullptr);
        GHRP_ASSERT(isPowerOf2(sets));
        GHRP_ASSERT(isPowerOf2(cfg.blockBytes));
        repl->reset(sets, ways);
    }

    /** Block-granular address of @p addr. */
    Addr blockAddress(Addr addr) const { return addr >> blockShift; }

    /** Set index for @p addr (modulo indexing, as in the paper). */
    std::uint32_t
    setIndex(Addr addr) const
    {
        return static_cast<std::uint32_t>(blockAddress(addr) & (sets - 1));
    }

    /**
     * Perform one access.
     *
     * @param addr accessed address (any byte inside the block).
     * @param pc accessing instruction address (policy context).
     * @param payload payload to install on a fill / update on a hit.
     */
    AccessOutcome
    access(Addr addr, Addr pc, const Payload &payload = Payload{})
    {
        const std::uint64_t tick = ++tickCount;
        const Addr tag = blockAddress(addr);
        AccessInfo info{addr, pc, setIndex(addr), tick};

        AccessOutcome outcome;
        outcome.set = info.set;

        // --- lookup --------------------------------------------------
        // The scan loop stays free of side effects (payload store,
        // tracker dispatch) so the compiler keeps it a tight tag
        // compare; hit bookkeeping happens once, after the scan.
        Line *line_set = &lines[static_cast<std::size_t>(info.set) * ways];
        std::uint32_t hit_way = ways;
        for (std::uint32_t w = 0; w < ways; ++w) {
            if (line_set[w].valid && line_set[w].tag == tag) {
                hit_way = w;
                break;
            }
        }
        if (hit_way != ways) {
            outcome.hit = true;
            outcome.way = hit_way;
            line_set[hit_way].payload = payload;
            stats.recordHit();
            repl->onHit(info, hit_way);
            if (tracker)
                tracker->onHit(info.set, hit_way, tick);
            return outcome;
        }

        // --- miss ----------------------------------------------------
        if (repl->shouldBypass(info)) {
            outcome.bypassed = true;
            stats.recordMiss(true);
            return outcome;
        }
        stats.recordMiss(false);

        const VictimChoice victim = claimFrame(line_set, info, tick);
        outcome.evicted = victim.evicted;
        outcome.victimWasDead = victim.wasDead;
        outcome.victimAddress = victim.victimAddress;

        line_set[victim.way].valid = true;
        line_set[victim.way].tag = tag;
        line_set[victim.way].payload = payload;
        outcome.way = victim.way;
        repl->onFill(info, victim.way);
        if (tracker)
            tracker->onFill(info.set, victim.way, tick);
        return outcome;
    }

    /**
     * Prefetch @p addr: fill it if absent, without touching the demand
     * hit/miss statistics (a separate prefetchFills counter is kept).
     * The replacement policy sees a normal fill; predicted-dead
     * prefetches are still subject to bypass. Prefetch hits do not
     * update recency (the block was not demanded).
     *
     * @return true when a fill happened.
     */
    bool
    prefetch(Addr addr, Addr pc)
    {
        if (probe(addr))
            return false;
        const std::uint64_t tick = ++tickCount;
        const Addr tag = blockAddress(addr);
        AccessInfo info{addr, pc, setIndex(addr), tick};
        Line *line_set = &lines[static_cast<std::size_t>(info.set) * ways];

        if (repl->shouldBypass(info))
            return false;

        // Same victim-selection sequence as the demand path, via the
        // shared helper: dead-eviction state (lastVictimWasDead read
        // between chooseVictim and onEvict) and the eviction counters
        // are reported consistently for demand fills and prefetches.
        const VictimChoice victim = claimFrame(line_set, info, tick);
        line_set[victim.way].valid = true;
        line_set[victim.way].tag = tag;
        line_set[victim.way].payload = Payload{};
        repl->onFill(info, victim.way);
        if (tracker)
            tracker->onFill(info.set, victim.way, tick);
        ++prefetchFillCount;
        return true;
    }

    /** Number of fills issued by prefetch(). */
    std::uint64_t prefetchFills() const { return prefetchFillCount; }

    /**
     * Probe without modifying any state (no recency update, no fill).
     * @return the way holding @p addr, if present.
     */
    std::optional<std::uint32_t>
    probe(Addr addr) const
    {
        const Addr tag = blockAddress(addr);
        const std::uint32_t set = setIndex(addr);
        const Line *line_set = &lines[static_cast<std::size_t>(set) * ways];
        for (std::uint32_t w = 0; w < ways; ++w)
            if (line_set[w].valid && line_set[w].tag == tag)
                return w;
        return std::nullopt;
    }

    /** Payload of the block holding @p addr (must be present). */
    const Payload &
    payloadAt(Addr addr, std::uint32_t way) const
    {
        const std::uint32_t set = setIndex(addr);
        const Line &line = lines[static_cast<std::size_t>(set) * ways + way];
        GHRP_ASSERT(line.valid);
        return line.payload;
    }

    /** Invalidate everything (keeps policy metadata sizing). */
    void
    invalidateAll()
    {
        for (Line &line : lines)
            line.valid = false;
    }

    /** Attach an efficiency tracker (not owned); nullptr detaches. */
    void attachTracker(stats::EfficiencyTracker *t) { tracker = t; }

    /** Reset hit/miss statistics (e.g. after warm-up). */
    void resetStats() { stats = stats::AccessStats{}; }

    const stats::AccessStats &accessStats() const { return stats; }
    const CacheConfig &config() const { return cfg; }
    ReplacementPolicy &policy() { return *repl; }
    const ReplacementPolicy &policy() const { return *repl; }
    std::uint32_t numSets() const { return sets; }
    std::uint32_t numWays() const { return ways; }
    std::uint64_t ticks() const { return tickCount; }

  private:
    struct Line
    {
        bool valid = false;
        Addr tag = 0;
        Payload payload{};
    };

    /** Outcome of claiming a frame for a fill. */
    struct VictimChoice
    {
        std::uint32_t way = 0;
        bool evicted = false;       ///< a valid block was displaced
        bool wasDead = false;       ///< victim chosen by dead prediction
        Addr victimAddress = 0;     ///< valid when evicted
    };

    /**
     * Claim a frame in @p line_set for a fill: an invalid frame when
     * one exists, else the policy's victim. The eviction sequence —
     * chooseVictim, then lastVictimWasDead, then the eviction counters,
     * then onEvict and the tracker callback — is the single definition
     * shared by access() and prefetch(), so dead-eviction accounting
     * cannot drift between the demand and prefetch paths.
     */
    VictimChoice
    claimFrame(Line *line_set, const AccessInfo &info, std::uint64_t tick)
    {
        VictimChoice choice;
        for (std::uint32_t w = 0; w < ways; ++w) {
            if (!line_set[w].valid) {
                choice.way = w;
                return choice;
            }
        }
        choice.way = repl->chooseVictim(info);
        GHRP_ASSERT(choice.way < ways);
        choice.evicted = true;
        choice.wasDead = repl->lastVictimWasDead();
        choice.victimAddress = line_set[choice.way].tag << blockShift;
        ++stats.evictions;
        if (choice.wasDead)
            ++stats.deadEvictions;
        repl->onEvict(info, choice.way, choice.victimAddress);
        if (tracker)
            tracker->onEvict(info.set, choice.way, tick);
        return choice;
    }

    CacheConfig cfg;
    std::unique_ptr<ReplacementPolicy> repl;
    std::uint32_t sets;
    std::uint32_t ways;
    unsigned blockShift;
    std::vector<Line> lines;
    stats::AccessStats stats;
    stats::EfficiencyTracker *tracker = nullptr;
    std::uint64_t tickCount = 0;
    std::uint64_t prefetchFillCount = 0;
};

} // namespace ghrp::cache

#endif // GHRP_CACHE_CACHE_HH

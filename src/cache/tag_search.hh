/**
 * @file
 * Branch-light tag search over the cache model's struct-of-arrays tag
 * store: given one set's contiguous tag row and its validity bitmask,
 * find the (unique) way holding a tag. The scalar loop is the
 * portable reference; on x86-64 an AVX2 variant compares four tags per
 * instruction and is selected once at startup by runtime CPU
 * detection. Both back ends are pure functions of their arguments and
 * return identical results — the dispatch unit test locks that down —
 * so which one runs never affects simulation results.
 */

#ifndef GHRP_CACHE_TAG_SEARCH_HH
#define GHRP_CACHE_TAG_SEARCH_HH

#include <cstdint>

#include "util/bit_ops.hh"

namespace ghrp::cache
{

/** AVX2 back end is compiled only for x86-64 GCC/Clang builds. */
#if (defined(__x86_64__) || defined(_M_X64)) && \
    (defined(__GNUC__) || defined(__clang__))
#define GHRP_TAG_SEARCH_HAVE_AVX2 1
#else
#define GHRP_TAG_SEARCH_HAVE_AVX2 0
#endif

/**
 * Signature shared by the tag-search back ends.
 *
 * @param tags one set's tag row, @p ways contiguous entries.
 * @param valid_mask bit w set when way w holds a valid block.
 * @param ways number of ways in the row (<= 64).
 * @param tag needle tag.
 * @return the way holding @p tag (valid bit set and tag equal), or
 *         @p ways when the set does not hold it. Valid tags within a
 *         set are unique (fills happen only on misses), so at most one
 *         way can match.
 */
using TagSearchFn = std::uint32_t (*)(const Addr *tags,
                                      std::uint64_t valid_mask,
                                      std::uint32_t ways, Addr tag);

/** Portable scalar back end (the reference implementation). */
std::uint32_t findTagWayScalar(const Addr *tags, std::uint64_t valid_mask,
                               std::uint32_t ways, Addr tag);

#if GHRP_TAG_SEARCH_HAVE_AVX2
/**
 * AVX2 back end: four 64-bit tag compares per step, match bits
 * filtered through @p valid_mask. Must only be called on CPUs where
 * tagSearchAvx2Supported() is true.
 */
std::uint32_t findTagWayAvx2(const Addr *tags, std::uint64_t valid_mask,
                             std::uint32_t ways, Addr tag);
#endif

/** True when this CPU can execute the AVX2 back end. */
bool tagSearchAvx2Supported();

/**
 * Selection logic: AVX2 when compiled in, supported by the CPU and not
 * disabled by the GHRP_NO_AVX2 environment variable (any non-empty
 * value forces scalar). Re-reads the environment on every call so the
 * dispatch unit test can cover both selection paths on any host;
 * production code goes through activeTagSearch(), which caches the
 * first resolution.
 */
TagSearchFn resolveTagSearch();

/** The back end the process uses: resolveTagSearch(), cached on first
 *  call. */
TagSearchFn activeTagSearch();

/** Name of the active back end: "avx2" or "scalar". */
const char *tagSearchBackend();

} // namespace ghrp::cache

#endif // GHRP_CACHE_TAG_SEARCH_HH

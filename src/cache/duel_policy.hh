/**
 * @file
 * Set-dueling meta-policy: composes any two replacement policies and
 * picks between them per set. A small number of leader sets are
 * statically dedicated to constituent A and as many to constituent B;
 * a saturating PSEL counter tallies leader-set misses (a miss in an
 * A-leader votes against A) and follower sets obey the current PSEL
 * winner. This is DRRIP's dueling mechanism (Jaleel et al., ISCA
 * 2010) lifted out of the RRIP insertion decision into a generic
 * policy wrapper, so GHRP can duel LRU in the I-cache and the BTB
 * alike — the dynamic-selection extension argued for by "Beyond
 * Static Policies" (see PAPERS.md).
 *
 * Both constituents observe EVERY hook (reset / shouldBypass /
 * chooseVictim / onHit / onFill / onEvict) in a fixed A-then-B order,
 * while only the set owner's return value is acted on. Forwarding to
 * both keeps each constituent's replacement metadata synchronized
 * with the actual cache contents (onFill/onEvict carry the way that
 * really changed), so the loser keeps competing with an up-to-date
 * view and `duel:X,X` is bit-identical to plain X for any
 * self-contained policy — the differential lock the tests enforce.
 */

#ifndef GHRP_CACHE_DUEL_POLICY_HH
#define GHRP_CACHE_DUEL_POLICY_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "cache/replacement.hh"

namespace ghrp::cache
{

/**
 * End-of-run statistics of one DuelPolicy instance, harvested into
 * FrontendResult (and from there into report legs / extras.dueling).
 * Everything here is a pure function of the access stream, so reports
 * carrying it stay bit-identical across resume/merge paths.
 */
struct DuelTelemetry
{
    std::int64_t finalPsel = 0;
    std::uint64_t leaderMissesA = 0;  ///< misses observed in A-leader sets
    std::uint64_t leaderMissesB = 0;  ///< misses observed in B-leader sets
    std::uint64_t winnerFlips = 0;    ///< PSEL sign changes
    /** Decimation stride of the trajectory below (doubles as needed). */
    std::uint64_t sampleStride = 1;
    /** PSEL values sampled every sampleStride leader misses. */
    std::vector<std::int64_t> trajectory;
};

/**
 * The `duel:<A>,<B>` wrapper. Owns both constituent policies; the
 * cache drives it like any other ReplacementPolicy. Constructed by
 * the front-end factory (which knows how to build GHRP constituents
 * against the shared predictor) — see FrontendSim.
 */
class DuelPolicy : public ReplacementPolicy
{
  public:
    struct Params
    {
        std::int64_t pselMax = 1023;  ///< PSEL saturates at +/- this
        std::uint32_t leaders = 32;   ///< leader sets per constituent
    };

    /** Which constituent owns a set's decisions. */
    enum class SetRole : std::uint8_t
    {
        Follower,
        LeaderA,
        LeaderB
    };

    /** @p label is the canonical spec name ("duel:GHRP,LRU"). */
    DuelPolicy(std::unique_ptr<ReplacementPolicy> a,
               std::unique_ptr<ReplacementPolicy> b, Params params,
               std::string label);

    void reset(std::uint32_t num_sets, std::uint32_t num_ways) override;
    bool shouldBypass(const AccessInfo &info) override;
    std::uint32_t chooseVictim(const AccessInfo &info) override;
    void onHit(const AccessInfo &info, std::uint32_t way) override;
    void onFill(const AccessInfo &info, std::uint32_t way) override;
    void onEvict(const AccessInfo &info, std::uint32_t way,
                 Addr victim_addr) override;
    std::string name() const override { return label; }
    bool lastVictimWasDead() const override { return lastDead; }
    PredictionOutcomes predictionOutcomes() const override;

    /** Current PSEL value (negative favours B). */
    std::int64_t psel() const { return pselValue; }
    /** True while follower sets obey constituent A. */
    bool winnerIsA() const { return pselValue >= 0; }
    SetRole role(std::uint32_t set) const;

    ReplacementPolicy &constituentA() { return *a; }
    ReplacementPolicy &constituentB() { return *b; }

    /** Snapshot the dueling statistics accumulated since reset(). */
    DuelTelemetry telemetry() const;

  private:
    /** Owner of info.set's decisions under the current PSEL. */
    ReplacementPolicy &owner(const AccessInfo &info) const;

    std::unique_ptr<ReplacementPolicy> a;
    std::unique_ptr<ReplacementPolicy> b;
    const Params params;
    const std::string label;

    std::vector<SetRole> roles;
    std::int64_t pselValue = 0;
    bool lastDead = false;

    std::uint64_t leaderMissesA = 0;
    std::uint64_t leaderMissesB = 0;
    std::uint64_t winnerFlips = 0;
    std::uint64_t sampleStride = 1;
    std::uint64_t sinceSample = 0;
    std::vector<std::int64_t> trajectory;
};

} // namespace ghrp::cache

#endif // GHRP_CACHE_DUEL_POLICY_HH

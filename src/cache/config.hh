/**
 * @file
 * Geometry configuration for set-associative cache-like structures
 * (I-cache and BTB).
 */

#ifndef GHRP_CACHE_CONFIG_HH
#define GHRP_CACHE_CONFIG_HH

#include <cstdint>
#include <cstdio>
#include <string>

#include "util/bit_ops.hh"
#include "util/logging.hh"

namespace ghrp::cache
{

/** Geometry of a set-associative structure. */
struct CacheConfig
{
    std::uint32_t sizeBytes = 64 * 1024; ///< total capacity
    std::uint32_t blockBytes = 64;       ///< line size (1 for BTB-like)
    std::uint32_t assoc = 8;             ///< ways per set

    /** Number of sets implied by the geometry. */
    std::uint32_t
    numSets() const
    {
        GHRP_ASSERT(blockBytes > 0 && assoc > 0);
        GHRP_ASSERT(sizeBytes % (blockBytes * assoc) == 0);
        return sizeBytes / (blockBytes * assoc);
    }

    /** Total number of block frames. */
    std::uint32_t numBlocks() const { return numSets() * assoc; }

    /** Construct an I-cache geometry of @p kb kilobytes. */
    static CacheConfig
    icache(std::uint32_t kb, std::uint32_t assoc, std::uint32_t block = 64)
    {
        CacheConfig c;
        c.sizeBytes = kb * 1024;
        c.blockBytes = block;
        c.assoc = assoc;
        return c;
    }

    /**
     * Construct a BTB geometry of @p entries total entries. One entry
     * covers one 4-byte instruction slot, so 4-byte-aligned branch PCs
     * spread over all sets (modulo indexing by pc >> 2).
     */
    static CacheConfig
    btb(std::uint32_t entries, std::uint32_t assoc)
    {
        CacheConfig c;
        c.sizeBytes = entries * 4;
        c.blockBytes = 4;
        c.assoc = assoc;
        return c;
    }

    /** Total entries for entry-grained structures (BTB). */
    std::uint32_t numEntries() const { return sizeBytes / blockBytes; }

    /** Human-readable description like "64KB 8-way 64B". */
    std::string
    describe() const
    {
        char buf[64];
        if (blockBytes <= 4) {
            std::snprintf(buf, sizeof(buf), "%u-entry %u-way",
                          numEntries(), assoc);
        } else {
            std::snprintf(buf, sizeof(buf), "%uKB %u-way %uB",
                          sizeBytes / 1024, assoc, blockBytes);
        }
        return buf;
    }
};

} // namespace ghrp::cache

#endif // GHRP_CACHE_CONFIG_HH

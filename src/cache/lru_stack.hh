/**
 * @file
 * Reusable true-LRU recency bookkeeping for sets x ways frames. Used
 * by the LRU policy itself and as the fallback ordering inside the
 * predictive policies (GHRP and SDBP keep "3 bits of LRU stack
 * position" per block in the paper's metadata budget).
 */

#ifndef GHRP_CACHE_LRU_STACK_HH
#define GHRP_CACHE_LRU_STACK_HH

#include <cstdint>
#include <vector>

#include "util/logging.hh"

namespace ghrp::cache
{

/**
 * Stack-position LRU: position 0 is MRU, position ways-1 is LRU.
 * touch() moves a way to MRU and ages the ways in front of it.
 */
class LruStack
{
  public:
    LruStack() = default;

    /** Size for @p num_sets x @p num_ways; initial order is way order. */
    void
    reset(std::uint32_t num_sets, std::uint32_t num_ways)
    {
        GHRP_ASSERT(num_ways >= 1);
        sets = num_sets;
        ways = num_ways;
        position.assign(static_cast<std::size_t>(sets) * ways, 0);
        for (std::uint32_t s = 0; s < sets; ++s)
            for (std::uint32_t w = 0; w < ways; ++w)
                position[index(s, w)] = static_cast<std::uint8_t>(w);
    }

    /** Promote (set, way) to MRU. */
    void
    touch(std::uint32_t set, std::uint32_t way)
    {
        // Hot path: one bounds check for the whole row, then a
        // branch-free aging sweep the compiler can vectorize.
        std::uint8_t *row = &position[index(set, way)] - way;
        const std::uint8_t old_pos = row[way];
        for (std::uint32_t w = 0; w < ways; ++w)
            row[w] += static_cast<std::uint8_t>(row[w] < old_pos);
        row[way] = 0;
    }

    /** Way currently at the LRU position of @p set. */
    std::uint32_t
    lruWay(std::uint32_t set) const
    {
        const std::uint8_t *row = &position[index(set, 0)];
        const auto last = static_cast<std::uint8_t>(ways - 1);
        for (std::uint32_t w = 0; w < ways; ++w)
            if (row[w] == last)
                return w;
        panic("corrupt LRU stack in set %u", set);
    }

    /** Stack position of (set, way); 0 = MRU. */
    std::uint8_t
    positionOf(std::uint32_t set, std::uint32_t way) const
    {
        return position[index(set, way)];
    }

    std::uint32_t numWays() const { return ways; }

  private:
    std::size_t
    index(std::uint32_t set, std::uint32_t way) const
    {
        GHRP_ASSERT(set < sets && way < ways);
        return static_cast<std::size_t>(set) * ways + way;
    }

    std::uint32_t sets = 0;
    std::uint32_t ways = 0;
    std::vector<std::uint8_t> position;
};

} // namespace ghrp::cache

#endif // GHRP_CACHE_LRU_STACK_HH

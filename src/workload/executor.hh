/**
 * @file
 * Program executor: walks a generated Program's control-flow graph and
 * emits a fully consistent branch trace (PCs, targets, fall-throughs).
 * This is the synthetic stand-in for collecting a CBP-5 trace on real
 * hardware.
 */

#ifndef GHRP_WORKLOAD_EXECUTOR_HH
#define GHRP_WORKLOAD_EXECUTOR_HH

#include <cstdint>
#include <string>

#include "trace/branch_record.hh"
#include "workload/program.hh"

namespace ghrp::workload
{

/** Dynamic execution parameters (independent of program shape). */
struct ExecParams
{
    std::uint64_t seed = 1;          ///< dynamic-behaviour RNG seed
    std::uint64_t maxInstructions = 4'000'000;
    std::uint64_t phaseLengthInstructions = 400'000;
    double zipfSkew = 1.2;           ///< function-hotness skew
    double scanCallProbability = 0.04;
    double bigLoopCallProbability = 0.05;
    double stubCallProbability = 0.05;
    double secondaryModuleProbability = 0.15;
    /** Fraction of conditionals whose outcome follows a periodic
     *  pattern (learnable by the direction predictor) rather than an
     *  independent Bernoulli draw. */
    double patternedBranchFraction = 0.7;
};

/**
 * Execute @p program and return the branch trace.
 *
 * The dispatcher's indirect call site is steered by a phase schedule:
 * each phase concentrates calls on one module's functions (zipf-ranked,
 * with the ranking rotated every phase so hot sets drift), with
 * occasional calls into a secondary module and into cold scan
 * functions. This produces the bursty, generational code reuse that
 * the paper's industrial traces exhibit.
 *
 * @param program the generated program (validated).
 * @param params dynamic execution knobs.
 * @param name trace name recorded in the output.
 * @param category category tag recorded in the output.
 */
trace::Trace execute(const Program &program, const ExecParams &params,
                     const std::string &name,
                     const std::string &category);

} // namespace ghrp::workload

#endif // GHRP_WORKLOAD_EXECUTOR_HH

/**
 * @file
 * Content-addressed on-disk store for generated traces.
 *
 * Synthetic traces are pure functions of (generator parameters, seed,
 * generator version); the store keys each trace by a 64-bit hash of
 * exactly those inputs and persists it in the versioned trace_io
 * format, so repeated bench/figure invocations of the same workload
 * never regenerate it — they mmap the cached file and decode straight
 * from the map.
 *
 * Key derivation hashes every WorkloadParams field (after applying the
 * instruction override) plus generatorVersion, so any change to the
 * category presets, the seed derivation, or the generator itself moves
 * the key and the stale file is simply never matched again. Files that
 * do match the key but fail to open (wrong trace-format version,
 * truncation, corruption) are treated as misses and overwritten.
 * Eviction is manual: every file is content-addressed and immutable,
 * so deleting any or all of the directory is always safe.
 */

#ifndef GHRP_WORKLOAD_TRACE_STORE_HH
#define GHRP_WORKLOAD_TRACE_STORE_HH

#include <atomic>
#include <cstdint>
#include <string>

#include "trace/decoded_trace.hh"
#include "workload/suite.hh"

namespace ghrp::workload
{

/**
 * Version of the workload generator pipeline (program generation +
 * execution). Bump whenever a change alters the records a given
 * (category, seed, instruction budget) produces; cached traces keyed
 * under the old version then stop matching automatically.
 */
constexpr std::uint32_t generatorVersion = 1;

/**
 * Version of the direction-resolution pipeline (the predictor
 * implementations and their default configurations). Bump whenever a
 * change alters the predicted-direction sequence a given (trace,
 * direction kind) produces; cached sidecars keyed under the old
 * version then stop matching automatically.
 */
constexpr std::uint32_t directionStreamVersion = 1;

class TraceStore
{
  public:
    /**
     * @param directory store root. Empty selects the GHRP_TRACE_CACHE
     *        environment variable; if that is also unset/empty the
     *        store is disabled and every acquire degenerates to an
     *        in-memory buildTrace().
     */
    explicit TraceStore(std::string directory = {});

    bool enabled() const { return !dir.empty(); }
    const std::string &directory() const { return dir; }

    /**
     * Content key for (spec, override): a splitMix64-chained hash of
     * generatorVersion and every generation parameter. The trace name
     * is deliberately excluded — it is presentation metadata, not
     * content — and is patched from @p spec on load.
     */
    static std::uint64_t contentKey(const TraceSpec &spec,
                                    std::uint64_t instruction_override);

    /** Store path for (spec, override): <dir>/<key16hex>.ghrptrc. */
    std::string pathFor(const TraceSpec &spec,
                        std::uint64_t instruction_override) const;

    /**
     * The trace for @p spec: loaded from the store when cached,
     * otherwise generated and persisted. Identical to
     * buildTrace(spec, override) in either case. Thread-safe;
     * concurrent writers of the same key are harmless (atomic
     * temp-file + rename, identical content).
     */
    trace::Trace acquire(const TraceSpec &spec,
                         std::uint64_t instruction_override = 0);

    /**
     * The decoded fetch-op stream for @p spec at the given granularity.
     * On a store hit the decode streams records directly from the mmap
     * (zero-copy: no intermediate record vector); on a miss the trace
     * is generated, persisted, and decoded in memory.
     */
    trace::DecodedTrace acquireDecoded(const TraceSpec &spec,
                                       std::uint64_t instruction_override,
                                       std::uint32_t block_bytes,
                                       std::uint32_t inst_bytes);

    /**
     * Load a cached pre-resolved direction stream for @p dec into
     * dec.dirPredictedTaken / dec.directionKind. The stream is a pure
     * function of (trace content, direction kind, resolver version) —
     * the sidecar is keyed by exactly those, so a hit is byte-identical
     * to re-running the predictor. @return false (dec untouched) when
     * the store is disabled, the sidecar is absent, or any header field
     * (magic, versions, content key, kind, record count) disagrees.
     */
    bool loadDirectionStream(const TraceSpec &spec,
                             std::uint64_t instruction_override,
                             int direction_kind,
                             trace::DecodedTrace &dec) const;

    /**
     * Persist dec's resolved direction stream as a sidecar next to the
     * trace (atomic temp-file + rename; no-op when the store is
     * disabled or a previous write failed). dec must carry a stream of
     * @p direction_kind.
     */
    void storeDirectionStream(const TraceSpec &spec,
                              std::uint64_t instruction_override,
                              int direction_kind,
                              const trace::DecodedTrace &dec);

    struct Stats
    {
        std::uint64_t hits = 0;   ///< served from disk
        std::uint64_t misses = 0; ///< generated (store enabled)
        std::uint64_t stores = 0; ///< successfully persisted
    };

    Stats
    stats() const
    {
        return {hitCount.load(std::memory_order_relaxed),
                missCount.load(std::memory_order_relaxed),
                storeCount.load(std::memory_order_relaxed)};
    }

  private:
    /** Persist @p tr at @p path via temp-file + atomic rename; failures
     *  warn once and leave the store read-only for this process. */
    void persist(const trace::Trace &tr, const std::string &path);

    /** Sidecar path: <dir>/<key16hex>.dir<kind>. */
    std::string directionPathFor(const TraceSpec &spec,
                                 std::uint64_t instruction_override,
                                 int direction_kind) const;

    std::string dir;
    std::atomic<std::uint64_t> hitCount{0};
    std::atomic<std::uint64_t> missCount{0};
    std::atomic<std::uint64_t> storeCount{0};
    std::atomic<std::uint64_t> tempCounter{0};
    std::atomic<bool> writeFailed{false};
};

} // namespace ghrp::workload

#endif // GHRP_WORKLOAD_TRACE_STORE_HH

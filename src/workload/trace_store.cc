#include "workload/trace_store.hh"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <system_error>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "telemetry/metrics.hh"
#include "trace/trace_io.hh"
#include "util/logging.hh"
#include "util/random.hh"

namespace ghrp::workload
{

namespace
{

/** Process-wide trace-store telemetry (mirrors the per-store atomics,
 *  which remain the source of truth for SweepStats). */
struct StoreMetrics
{
    telemetry::Counter &hits;
    telemetry::Counter &misses;
    telemetry::Counter &stores;
    telemetry::Counter &readBytes;
    telemetry::Counter &writtenBytes;
};

StoreMetrics &
storeMetrics()
{
    static StoreMetrics m{
        telemetry::metrics().counter("trace_store.hits"),
        telemetry::metrics().counter("trace_store.misses"),
        telemetry::metrics().counter("trace_store.stores"),
        telemetry::metrics().counter("trace_store.read_bytes"),
        telemetry::metrics().counter("trace_store.written_bytes"),
    };
    return m;
}

/** Direction-stream sidecar counters (hits/misses are tracked apart
 *  from the raw-trace counters: a sidecar miss still re-resolves, it
 *  never regenerates the trace). */
struct DirectionMetrics
{
    telemetry::Counter &hits;
    telemetry::Counter &misses;
    telemetry::Counter &stores;
};

DirectionMetrics &
directionMetrics()
{
    static DirectionMetrics m{
        telemetry::metrics().counter("trace_store.direction_hits"),
        telemetry::metrics().counter("trace_store.direction_misses"),
        telemetry::metrics().counter("trace_store.direction_stores"),
    };
    return m;
}

/** Sidecar header; every field is checked on load. */
struct DirectionHeader
{
    std::uint32_t magic = 0x47444952; // "GDIR"
    std::uint32_t version = directionStreamVersion;
    std::uint64_t contentKey = 0;
    std::uint32_t directionKind = 0;
    std::uint32_t reserved = 0;
    std::uint64_t numRecords = 0;
};

/** RAII stdio handle (the sidecar is a single sequential read/write;
 *  mmap buys nothing at one byte per record). */
struct FileCloser
{
    void operator()(std::FILE *f) const { std::fclose(f); }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

std::uint64_t
fileBytes(const std::string &path)
{
    std::error_code ec;
    const auto size = std::filesystem::file_size(path, ec);
    return ec ? 0 : static_cast<std::uint64_t>(size);
}

/** splitMix64-chained hash accumulator. */
class KeyHasher
{
  public:
    template <typename T>
        requires std::is_integral_v<T> || std::is_enum_v<T>
    void
    mix(T value)
    {
        state = splitMix64(state ^ static_cast<std::uint64_t>(value));
    }

    void mix(double value) { mix(std::bit_cast<std::uint64_t>(value)); }

    std::uint64_t value() const { return state; }

  private:
    std::uint64_t state = 0x6A09E667F3BCC909ull; // sqrt(2) fraction
};

} // anonymous namespace

TraceStore::TraceStore(std::string directory) : dir(std::move(directory))
{
    if (dir.empty()) {
        if (const char *env = std::getenv("GHRP_TRACE_CACHE"))
            dir = env;
    }
}

std::uint64_t
TraceStore::contentKey(const TraceSpec &spec,
                       std::uint64_t instruction_override)
{
    // Hash what the generator actually consumes: every WorkloadParams
    // field after the override is applied, exactly as buildTrace does.
    WorkloadParams p = makeParams(spec.category, spec.seed);
    if (instruction_override != 0)
        p.targetInstructions = instruction_override;

    KeyHasher h;
    h.mix(generatorVersion);
    h.mix(static_cast<std::uint64_t>(p.category));
    h.mix(p.seed);
    h.mix(p.numModules);
    h.mix(p.funcsPerModuleLo);
    h.mix(p.funcsPerModuleHi);
    h.mix(p.blocksPerFuncLo);
    h.mix(p.blocksPerFuncHi);
    h.mix(p.instrsPerBlockLo);
    h.mix(p.instrsPerBlockHi);
    h.mix(p.callFraction);
    h.mix(p.indirectCallFraction);
    h.mix(p.loopFraction);
    h.mix(p.switchFraction);
    h.mix(p.crossModuleCallFraction);
    h.mix(p.loopTripMeanLo);
    h.mix(p.loopTripMeanHi);
    h.mix(p.biasSkew);
    h.mix(p.scanCodeFraction);
    h.mix(p.scanBlocksLo);
    h.mix(p.scanBlocksHi);
    h.mix(p.bigLoopFraction);
    h.mix(p.bigLoopBlocksLo);
    h.mix(p.bigLoopBlocksHi);
    h.mix(p.bigLoopTripLo);
    h.mix(p.bigLoopTripHi);
    h.mix(p.stubFarmFraction);
    h.mix(p.stubBlocksLo);
    h.mix(p.stubBlocksHi);
    h.mix(p.targetInstructions);
    h.mix(p.phaseLengthInstructions);
    h.mix(p.zipfSkew);
    h.mix(p.scanCallProbability);
    h.mix(p.bigLoopCallProbability);
    h.mix(p.stubCallProbability);
    h.mix(p.maxCallDepth);
    h.mix(p.maxFunctionCost);
    h.mix(p.codeBase);
    h.mix(p.instBytes);
    h.mix(p.functionGapBytes);
    return h.value();
}

std::string
TraceStore::pathFor(const TraceSpec &spec,
                    std::uint64_t instruction_override) const
{
    char name[32];
    std::snprintf(name, sizeof(name), "%016llx.ghrptrc",
                  static_cast<unsigned long long>(
                      contentKey(spec, instruction_override)));
    return dir + "/" + name;
}

void
TraceStore::persist(const trace::Trace &tr, const std::string &path)
{
    if (writeFailed.load(std::memory_order_relaxed))
        return;

    std::error_code ec;
    std::filesystem::create_directories(dir, ec);

    // Unique temp name per process and call: concurrent producers of
    // the same key never collide, and the final rename is atomic, so a
    // reader sees either nothing or a complete file.
    char suffix[64];
    std::snprintf(suffix, sizeof(suffix), ".tmp.%ld.%llu",
                  static_cast<long>(
#if defined(__unix__) || defined(__APPLE__)
                      ::getpid()
#else
                      0
#endif
                          ),
                  static_cast<unsigned long long>(
                      tempCounter.fetch_add(1, std::memory_order_relaxed)));
    const std::string tmp = path + suffix;

    if (ec || !trace::tryWriteTrace(tr, tmp)) {
        if (!writeFailed.exchange(true))
            warn("trace store: cannot write under '%s'; continuing "
                 "without persisting", dir.c_str());
        std::filesystem::remove(tmp, ec);
        return;
    }
    // A failed publish (rename) is the same condition as a failed
    // write — a full or broken disk, a directory swapped for something
    // unwritable — so it also flips the store to read-only instead of
    // re-paying a doomed serialize+rename for every later trace.
    std::error_code rename_ec;
    std::filesystem::rename(tmp, path, rename_ec);
    if (rename_ec) {
        if (!writeFailed.exchange(true))
            warn("trace store: cannot publish '%s' (%s); continuing "
                 "without persisting", path.c_str(),
                 rename_ec.message().c_str());
        std::filesystem::remove(tmp, ec);
        return;
    }
    storeCount.fetch_add(1, std::memory_order_relaxed);
    storeMetrics().stores.add();
    storeMetrics().writtenBytes.add(fileBytes(path));
}

trace::Trace
TraceStore::acquire(const TraceSpec &spec,
                    std::uint64_t instruction_override)
{
    if (!enabled())
        return buildTrace(spec, instruction_override);

    const std::string path = pathFor(spec, instruction_override);
    if (auto mapped = trace::MappedTrace::tryOpen(path)) {
        hitCount.fetch_add(1, std::memory_order_relaxed);
        storeMetrics().hits.add();
        storeMetrics().readBytes.add(fileBytes(path));
        trace::Trace tr = mapped->materialize();
        tr.name = spec.name;
        tr.category = categoryName(spec.category);
        return tr;
    }

    missCount.fetch_add(1, std::memory_order_relaxed);
    storeMetrics().misses.add();
    trace::Trace tr = buildTrace(spec, instruction_override);
    persist(tr, path);
    return tr;
}

std::string
TraceStore::directionPathFor(const TraceSpec &spec,
                             std::uint64_t instruction_override,
                             int direction_kind) const
{
    char name[48];
    std::snprintf(name, sizeof(name), "%016llx.dir%d",
                  static_cast<unsigned long long>(
                      contentKey(spec, instruction_override)),
                  direction_kind);
    return dir + "/" + name;
}

bool
TraceStore::loadDirectionStream(const TraceSpec &spec,
                                std::uint64_t instruction_override,
                                int direction_kind,
                                trace::DecodedTrace &dec) const
{
    if (!enabled() || direction_kind < 0)
        return false;

    const std::string path =
        directionPathFor(spec, instruction_override, direction_kind);
    FilePtr f(std::fopen(path.c_str(), "rb"));
    if (!f) {
        directionMetrics().misses.add();
        return false;
    }

    DirectionHeader expect;
    expect.contentKey = contentKey(spec, instruction_override);
    expect.directionKind = static_cast<std::uint32_t>(direction_kind);
    expect.numRecords = dec.numRecords();

    DirectionHeader hdr;
    std::vector<std::uint8_t> pred(dec.numRecords(), 0);
    // Any mismatch — stale resolver version, a colliding key from an
    // older layout, a record count that disagrees with this decode, a
    // truncated body — is a plain miss: the caller re-resolves and
    // overwrites the sidecar.
    if (std::fread(&hdr, sizeof(hdr), 1, f.get()) != 1 ||
        hdr.magic != expect.magic || hdr.version != expect.version ||
        hdr.contentKey != expect.contentKey ||
        hdr.directionKind != expect.directionKind ||
        hdr.numRecords != expect.numRecords ||
        (!pred.empty() &&
         std::fread(pred.data(), 1, pred.size(), f.get()) !=
             pred.size())) {
        directionMetrics().misses.add();
        return false;
    }

    dec.dirPredictedTaken = std::move(pred);
    dec.directionKind = direction_kind;
    directionMetrics().hits.add();
    storeMetrics().readBytes.add(fileBytes(path));
    return true;
}

void
TraceStore::storeDirectionStream(const TraceSpec &spec,
                                 std::uint64_t instruction_override,
                                 int direction_kind,
                                 const trace::DecodedTrace &dec)
{
    if (!enabled() || writeFailed.load(std::memory_order_relaxed))
        return;
    GHRP_ASSERT(dec.hasDirectionStream() &&
                dec.directionKind == direction_kind);

    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        return;

    const std::string path =
        directionPathFor(spec, instruction_override, direction_kind);
    char suffix[64];
    std::snprintf(suffix, sizeof(suffix), ".tmp.%ld.%llu",
                  static_cast<long>(
#if defined(__unix__) || defined(__APPLE__)
                      ::getpid()
#else
                      0
#endif
                          ),
                  static_cast<unsigned long long>(
                      tempCounter.fetch_add(1, std::memory_order_relaxed)));
    const std::string tmp = path + suffix;

    DirectionHeader hdr;
    hdr.contentKey = contentKey(spec, instruction_override);
    hdr.directionKind = static_cast<std::uint32_t>(direction_kind);
    hdr.numRecords = dec.dirPredictedTaken.size();

    bool ok = false;
    if (FilePtr f{std::fopen(tmp.c_str(), "wb")}) {
        ok = std::fwrite(&hdr, sizeof(hdr), 1, f.get()) == 1 &&
             (dec.dirPredictedTaken.empty() ||
              std::fwrite(dec.dirPredictedTaken.data(), 1,
                          dec.dirPredictedTaken.size(),
                          f.get()) == dec.dirPredictedTaken.size());
    }
    std::error_code rename_ec;
    if (ok)
        std::filesystem::rename(tmp, path, rename_ec);
    if (!ok || rename_ec) {
        // Same policy as persist(): a sidecar write failure means the
        // directory is unusable, so stop retrying for this process.
        if (!writeFailed.exchange(true))
            warn("trace store: cannot write direction sidecar under "
                 "'%s'; continuing without persisting", dir.c_str());
        std::filesystem::remove(tmp, ec);
        return;
    }
    directionMetrics().stores.add();
    storeMetrics().writtenBytes.add(fileBytes(path));
}

trace::DecodedTrace
TraceStore::acquireDecoded(const TraceSpec &spec,
                           std::uint64_t instruction_override,
                           std::uint32_t block_bytes,
                           std::uint32_t inst_bytes)
{
    if (enabled()) {
        const std::string path = pathFor(spec, instruction_override);
        if (auto mapped = trace::MappedTrace::tryOpen(path)) {
            hitCount.fetch_add(1, std::memory_order_relaxed);
            storeMetrics().hits.add();
            storeMetrics().readBytes.add(fileBytes(path));
            trace::DecodedTrace dec =
                trace::decodeTrace(*mapped, block_bytes, inst_bytes);
            dec.name = spec.name;
            dec.category = categoryName(spec.category);
            return dec;
        }
        missCount.fetch_add(1, std::memory_order_relaxed);
        storeMetrics().misses.add();
        const trace::Trace tr = buildTrace(spec, instruction_override);
        persist(tr, path);
        return trace::decodeTrace(tr, block_bytes, inst_bytes);
    }
    return trace::decodeTrace(buildTrace(spec, instruction_override),
                              block_bytes, inst_bytes);
}

} // namespace ghrp::workload

#include "workload/executor.hh"

#include <unordered_map>
#include <vector>

#include "util/logging.hh"
#include "util/random.hh"

namespace ghrp::workload
{

namespace
{

using trace::BranchRecord;
using trace::BranchType;

/** One activation record on the simulated call stack. */
struct ExecFrame
{
    std::uint32_t func;
    std::uint32_t block;
    Addr returnPc;  ///< where a Return from this frame goes
    /** Active loop latches: (block index, remaining taken count). */
    std::vector<std::pair<std::uint32_t, std::uint32_t>> loops;
};

/** Per-phase scheduling state for the dispatcher call site. */
class PhaseScheduler
{
  public:
    PhaseScheduler(const Program &program, const ExecParams &params,
                   Rng &rng)
        : prog(program), p(params)
    {
        regular.resize(prog.modules.size());
        scans.resize(prog.modules.size());
        bigLoops.resize(prog.modules.size());
        stubs.resize(prog.modules.size());
        for (std::size_t m = 0; m < prog.modules.size(); ++m) {
            for (std::uint32_t fi : prog.modules[m]) {
                if (prog.functions[fi].isScan)
                    scans[m].push_back(fi);
                else if (prog.functions[fi].isBigLoop)
                    bigLoops[m].push_back(fi);
                else if (prog.functions[fi].isStubFarm)
                    stubs[m].push_back(fi);
                else
                    regular[m].push_back(fi);
            }
        }
        currentModule = pickModule(rng, ~0u);
        previousModule = currentModule;
    }

    /** Advance the phase when the instruction count crosses a boundary. */
    void
    update(std::uint64_t instructions, Rng &rng)
    {
        const std::uint64_t phase =
            instructions / p.phaseLengthInstructions;
        if (phase == currentPhase)
            return;
        currentPhase = phase;
        previousModule = currentModule;
        currentModule = pickModule(rng, currentModule);
    }

    /** Choose the dispatcher callee for this dispatch. */
    std::uint32_t
    chooseCallee(Rng &rng)
    {
        std::uint32_t module = currentModule;
        if (rng.nextBool(p.secondaryModuleProbability))
            module = previousModule;

        if (rng.nextBool(p.scanCallProbability) &&
            !scans[module].empty()) {
            return scans[module][rng.nextBounded(scans[module].size())];
        }
        if (rng.nextBool(p.bigLoopCallProbability) &&
            !bigLoops[module].empty()) {
            return bigLoops[module][rng.nextBounded(
                bigLoops[module].size())];
        }
        if (rng.nextBool(p.stubCallProbability) &&
            !stubs[module].empty()) {
            return stubs[module][rng.nextBounded(stubs[module].size())];
        }

        const std::vector<std::uint32_t> &pool =
            !regular[module].empty() ? regular[module]
                                     : anyRegularPool();
        // Zipf-ranked hotness with a per-phase rotation so the hot
        // set drifts over the run, leaving behind generations of dead
        // blocks.
        const std::uint64_t rank = rng.nextZipf(pool.size(), p.zipfSkew);
        return pool[(rank + currentPhase * 7) % pool.size()];
    }

  private:
    std::uint32_t
    pickModule(Rng &rng, std::uint32_t avoid)
    {
        std::vector<std::uint32_t> candidates;
        for (std::uint32_t m = 0; m < prog.modules.size(); ++m)
            if (!prog.modules[m].empty() && m != avoid)
                candidates.push_back(m);
        if (candidates.empty()) {
            // Fall back to any non-empty module (possibly == avoid).
            for (std::uint32_t m = 0; m < prog.modules.size(); ++m)
                if (!prog.modules[m].empty())
                    candidates.push_back(m);
        }
        if (candidates.empty())
            return 0;
        return candidates[rng.nextBounded(candidates.size())];
    }

    const std::vector<std::uint32_t> &
    anyRegularPool()
    {
        for (const auto &pool : regular)
            if (!pool.empty())
                return pool;
        // Degenerate program: all functions are scans. Fall back to
        // the first non-empty scan pool.
        for (const auto &pool : scans)
            if (!pool.empty())
                return pool;
        panic("program has no callable functions");
    }

    const Program &prog;
    const ExecParams &p;
    std::vector<std::vector<std::uint32_t>> regular;
    std::vector<std::vector<std::uint32_t>> scans;
    std::vector<std::vector<std::uint32_t>> bigLoops;
    std::vector<std::vector<std::uint32_t>> stubs;
    std::uint64_t currentPhase = 0;
    std::uint32_t currentModule = 0;
    std::uint32_t previousModule = 0;
};

/** Find the remaining-trips counter for a latch, if active. */
std::uint32_t *
findLoop(ExecFrame &frame, std::uint32_t block)
{
    for (auto &entry : frame.loops)
        if (entry.first == block)
            return &entry.second;
    return nullptr;
}

} // anonymous namespace

trace::Trace
execute(const Program &program, const ExecParams &params,
        const std::string &name, const std::string &category)
{
    validateProgram(program);

    trace::Trace out;
    out.name = name;
    out.category = category;
    out.entryPc = program.functions[program.mainFunction].entry;
    out.records.reserve(params.maxInstructions / 6);

    Rng rng(params.seed ^ 0xA5A5A5A55A5A5A5Aull);
    PhaseScheduler scheduler(program, params, rng);

    // Global block numbering for per-branch execution counters (used by
    // patterned conditional outcomes).
    std::vector<std::uint32_t> block_base(program.functions.size());
    std::uint32_t total_blocks = 0;
    for (std::size_t fi = 0; fi < program.functions.size(); ++fi) {
        block_base[fi] = total_blocks;
        total_blocks +=
            static_cast<std::uint32_t>(program.functions[fi].blocks.size());
    }
    std::vector<std::uint32_t> exec_count(total_blocks, 0);
    // Per-block pattern periods are derived deterministically from the
    // block id so the same static branch behaves consistently.
    auto is_patterned = [&](std::uint32_t gid) {
        return (gid * 2654435761u >> 16) % 1000 <
               static_cast<std::uint32_t>(
                   params.patternedBranchFraction * 1000);
    };

    const std::uint32_t ib = program.instBytes;
    std::uint64_t instructions = 0;

    std::vector<ExecFrame> stack;
    stack.push_back({program.mainFunction, 0, 0, {}});

    while (!stack.empty()) {
        ExecFrame &frame = stack.back();
        const Function &func = program.functions[frame.func];
        GHRP_ASSERT(frame.block < func.blocks.size());
        const BasicBlock &block = func.blocks[frame.block];
        const std::uint32_t gid = block_base[frame.func] + frame.block;

        instructions += block.numInstrs;
        ++exec_count[gid];

        const Addr term_pc = block.terminatorPc(ib);
        const bool is_dispatcher_latch =
            frame.func == program.mainFunction &&
            block.term == TermKind::CondLoop;

        switch (block.term) {
          case TermKind::None:
            ++frame.block;
            break;

          case TermKind::CondForward: {
            bool taken;
            if (is_patterned(gid)) {
                // Periodic pattern of period 8..23 with a duty cycle
                // equal to the taken bias: learnable by history-based
                // direction predictors.
                const std::uint32_t period = 8 + gid % 16;
                const auto phase32 = exec_count[gid] % period;
                taken = phase32 <
                        static_cast<std::uint32_t>(
                            block.takenBias * period + 0.5);
            } else {
                taken = rng.nextBool(block.takenBias);
            }
            const Addr target = func.blocks[block.targetBlock].start;
            out.records.push_back(
                {term_pc, target, BranchType::CondDirect, taken});
            frame.block = taken ? block.targetBlock : frame.block + 1;
            break;
          }

          case TermKind::CondLoop: {
            bool taken;
            if (is_dispatcher_latch) {
                taken = instructions < params.maxInstructions;
                scheduler.update(instructions, rng);
            } else {
                std::uint32_t *remaining = findLoop(frame, frame.block);
                if (remaining == nullptr) {
                    const std::uint32_t trips =
                        1 + static_cast<std::uint32_t>(rng.nextBounded(
                                2 * block.loopTripMean));
                    frame.loops.emplace_back(frame.block, trips);
                    remaining = &frame.loops.back().second;
                }
                --*remaining;
                taken = *remaining > 0;
                if (!taken) {
                    // Loop session ends; erase the counter so the next
                    // entry to this loop resamples its trip count.
                    for (std::size_t i = 0; i < frame.loops.size(); ++i) {
                        if (frame.loops[i].first == frame.block) {
                            frame.loops[i] = frame.loops.back();
                            frame.loops.pop_back();
                            break;
                        }
                    }
                }
            }
            const Addr target = func.blocks[block.targetBlock].start;
            out.records.push_back(
                {term_pc, target, BranchType::CondDirect, taken});
            frame.block = taken ? block.targetBlock : frame.block + 1;
            break;
          }

          case TermKind::Jump: {
            const Addr target = func.blocks[block.targetBlock].start;
            out.records.push_back(
                {term_pc, target, BranchType::UncondDirect, true});
            frame.block = block.targetBlock;
            break;
          }

          case TermKind::Call:
          case TermKind::IndirectCall: {
            std::uint32_t callee;
            const bool is_dispatcher_site =
                frame.func == program.mainFunction &&
                block.term == TermKind::IndirectCall;
            if (is_dispatcher_site) {
                callee = scheduler.chooseCallee(rng);
            } else if (block.term == TermKind::Call) {
                callee = block.callees.front();
            } else {
                // Zipf-weighted virtual dispatch. (Cyclic patterning is
                // applied to switch targets below, not to callee choice:
                // rotating callees would flatten function hotness and
                // distort the workload's reuse structure.)
                callee = block.callees[rng.nextZipf(
                    block.callees.size(), 1.3)];
            }
            const Function &target_fn = program.functions[callee];
            out.records.push_back({term_pc, target_fn.entry,
                                   block.term == TermKind::Call
                                       ? BranchType::Call
                                       : BranchType::IndirectCall,
                                   true});
            ++frame.block;  // return resumes at the next block
            stack.push_back({callee, 0, term_pc + ib, {}});
            break;
          }

          case TermKind::IndirectJump: {
            // A third of switches rotate cyclically (state-machine
            // style, history-predictable); the rest are zipf-weighted.
            const bool cyclic = (gid * 2654435761u >> 13) % 3 == 0;
            const std::size_t choice =
                cyclic ? exec_count[gid] % block.switchTargets.size()
                       : rng.nextZipf(block.switchTargets.size(), 1.3);
            const std::uint32_t target_block =
                block.switchTargets[choice];
            const Addr target = func.blocks[target_block].start;
            out.records.push_back(
                {term_pc, target, BranchType::UncondIndirect, true});
            frame.block = target_block;
            break;
          }

          case TermKind::Return: {
            const Addr return_pc = frame.returnPc;
            stack.pop_back();
            if (stack.empty()) {
                // Main returned: the program is over. No record for
                // the final return (there is nowhere to return to).
                break;
            }
            out.records.push_back(
                {term_pc, return_pc, BranchType::Return, true});
            break;
          }
        }

        if (instructions >= params.maxInstructions &&
            stack.size() > 1) {
            // Budget exhausted inside a callee: unwind the stack by
            // truncating the trace here. A trace may end anywhere.
            break;
        }
    }

    return out;
}

} // namespace ghrp::workload

#include "workload/suite.hh"

#include <cstdio>

#include "util/random.hh"
#include "workload/executor.hh"
#include "workload/generator.hh"

namespace ghrp::workload
{

std::vector<TraceSpec>
makeSuite(std::uint32_t num_traces, std::uint64_t base_seed)
{
    static const Category cycle[] = {
        Category::ShortMobile, Category::ShortServer,
        Category::LongMobile, Category::LongServer};

    std::vector<TraceSpec> suite;
    suite.reserve(num_traces);
    for (std::uint32_t i = 0; i < num_traces; ++i) {
        TraceSpec spec;
        spec.category = cycle[i % 4];
        // Pure per-index derivation: trace i's seed (and therefore its
        // whole generator stream) is independent of every other trace,
        // so legs can be built in any order — or concurrently — with
        // identical results. splitMix64 also decorrelates neighbouring
        // base seeds, which plain base_seed + i did not.
        spec.seed = traceSeed(base_seed, i);
        char name[64];
        std::snprintf(name, sizeof(name), "%s-%02u",
                      categoryName(spec.category), i / 4 + 1);
        spec.name = name;
        suite.push_back(std::move(spec));
    }
    return suite;
}

trace::Trace
buildTrace(const TraceSpec &spec, std::uint64_t instruction_override)
{
    WorkloadParams params = makeParams(spec.category, spec.seed);
    if (instruction_override != 0)
        params.targetInstructions = instruction_override;

    const Program program = generateProgram(params);

    ExecParams exec;
    exec.seed = spec.seed * 0x2545F4914F6CDD1Dull + 1;
    exec.maxInstructions = params.targetInstructions;
    exec.phaseLengthInstructions = params.phaseLengthInstructions;
    exec.zipfSkew = params.zipfSkew;
    exec.scanCallProbability = params.scanCallProbability;
    exec.bigLoopCallProbability = params.bigLoopCallProbability;
    exec.stubCallProbability = params.stubCallProbability;

    return execute(program, exec, spec.name,
                   categoryName(spec.category));
}

} // namespace ghrp::workload

#include "workload/generator.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/random.hh"

namespace ghrp::workload
{

namespace
{

/** A candidate callee: function index plus its expected subtree cost. */
struct CalleeCandidate
{
    std::uint32_t func;
    std::uint64_t cost;
};

/**
 * Build the basic blocks of one regular function while keeping its
 * *expected subtree cost* (body instructions with loop multiplicities,
 * plus expected cost of every call) under @p max_cost. Callees come
 * from @p callee_pool (all with strictly larger index — the DAG
 * constraint) whose costs are already known because functions are
 * generated in reverse index order.
 *
 * @return the function's expected subtree cost.
 */
std::uint64_t
buildRegularFunction(Function &func, const WorkloadParams &p, Rng &rng,
                     const std::vector<CalleeCandidate> &callee_pool,
                     std::uint64_t max_cost)
{
    const auto nblocks = static_cast<std::uint32_t>(rng.nextRange(
        p.blocksPerFuncLo, p.blocksPerFuncHi));
    func.blocks.resize(nblocks);

    Addr addr = func.entry;
    // Per-block expected cost contribution (instructions, scaled by the
    // multiplicity of every enclosing loop and by call subtree costs).
    std::vector<double> contrib(nblocks);
    for (std::uint32_t i = 0; i < nblocks; ++i) {
        BasicBlock &b = func.blocks[i];
        b.start = addr;
        b.numInstrs = static_cast<std::uint32_t>(
            rng.nextRange(p.instrsPerBlockLo, p.instrsPerBlockHi));
        addr += static_cast<Addr>(b.numInstrs) * p.instBytes;
        contrib[i] = b.numInstrs;
    }

    auto total_cost = [&]() {
        double total = 0.0;
        for (double c : contrib)
            total += c;
        return total;
    };

    for (std::uint32_t i = 0; i < nblocks; ++i) {
        BasicBlock &b = func.blocks[i];
        if (i + 1 == nblocks) {
            b.term = TermKind::Return;
            continue;
        }

        const double budget_left =
            static_cast<double>(max_cost) - total_cost();

        const bool can_call = !callee_pool.empty() && budget_left > 0;
        const double w_call = can_call ? p.callFraction : 0.0;
        const double w_icall = can_call ? p.indirectCallFraction : 0.0;
        const bool can_switch = i + 2 < nblocks;
        const double w_switch = can_switch ? p.switchFraction : 0.0;
        const bool can_loop = i > 0 && budget_left > 0;
        const double w_loop = can_loop ? p.loopFraction : 0.0;
        const double w_cond = 0.30;
        const double w_jump = 0.12;
        const double w_none = 0.22;

        switch (rng.nextWeighted({w_none, w_cond, w_loop, w_jump, w_call,
                                  w_icall, w_switch})) {
          case 0:
            b.term = TermKind::None;
            break;

          case 1: {
            b.term = TermKind::CondForward;
            const std::uint32_t span = std::min<std::uint32_t>(
                6, nblocks - 1 - i);
            b.targetBlock =
                i + 1 + static_cast<std::uint32_t>(rng.nextBounded(span));
            // Mostly strongly biased conditionals, as in real code.
            if (rng.nextBool(p.biasSkew)) {
                b.takenBias = rng.nextBool(0.5)
                                  ? 0.02 + rng.nextDouble() * 0.08
                                  : 0.90 + rng.nextDouble() * 0.08;
            } else {
                b.takenBias = 0.25 + rng.nextDouble() * 0.5;
            }
            break;
          }

          case 2: {
            // Loop latch: multiply the body [target, i] by the trip
            // count, clamped so the function stays under budget.
            const std::uint32_t back = static_cast<std::uint32_t>(
                rng.nextBounded(std::min<std::uint32_t>(i, 5) + 1));
            const std::uint32_t target = i - back;
            double body = 0.0;
            for (std::uint32_t j = target; j <= i; ++j)
                body += contrib[j];

            std::uint64_t trips = static_cast<std::uint64_t>(
                rng.nextRange(p.loopTripMeanLo, p.loopTripMeanHi));
            if (body > 0 &&
                static_cast<double>(trips - 1) * body > budget_left) {
                trips = 1 + static_cast<std::uint64_t>(
                                budget_left / body);
            }
            if (trips < 2) {
                // Not affordable as a loop: fall back to straight code.
                b.term = TermKind::None;
                break;
            }
            b.term = TermKind::CondLoop;
            b.targetBlock = target;
            b.loopTripMean = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(trips, 1u << 20));
            for (std::uint32_t j = target; j <= i; ++j)
                contrib[j] *= static_cast<double>(trips);
            break;
          }

          case 3: {
            b.term = TermKind::Jump;
            const std::uint32_t span = std::min<std::uint32_t>(
                4, nblocks - 1 - i);
            b.targetBlock =
                i + 1 + static_cast<std::uint32_t>(rng.nextBounded(span));
            break;
          }

          case 4:
          case 5: {
            // Direct or indirect call: only callees whose expected
            // subtree cost fits the remaining budget are eligible.
            const double afford = budget_left * 0.5;
            std::vector<std::uint32_t> eligible;
            for (std::size_t c = 0; c < callee_pool.size(); ++c)
                if (static_cast<double>(callee_pool[c].cost) <= afford)
                    eligible.push_back(static_cast<std::uint32_t>(c));
            if (eligible.empty()) {
                b.term = TermKind::None;
                break;
            }

            auto pick = [&]() -> const CalleeCandidate & {
                return callee_pool[eligible[rng.nextBounded(
                    eligible.size())]];
            };
            if (rng.nextWeighted({w_call, w_icall}) == 0 ||
                eligible.size() < 2) {
                b.term = TermKind::Call;
                const CalleeCandidate &callee = pick();
                b.callees.push_back(callee.func);
                contrib[i] += static_cast<double>(callee.cost);
            } else {
                b.term = TermKind::IndirectCall;
                const std::size_t fanout = 2 + rng.nextBounded(
                    std::min<std::size_t>(eligible.size(), 6));
                double avg = 0.0;
                for (std::size_t c = 0; c < fanout; ++c) {
                    const CalleeCandidate &callee = pick();
                    b.callees.push_back(callee.func);
                    avg += static_cast<double>(callee.cost);
                }
                contrib[i] += avg / static_cast<double>(fanout);
            }
            break;
          }

          case 6: {
            b.term = TermKind::IndirectJump;
            const std::uint32_t span = nblocks - 1 - i;
            const std::size_t fanout =
                2 + rng.nextBounded(std::min<std::uint32_t>(span, 5));
            for (std::size_t c = 0; c < fanout; ++c)
                b.switchTargets.push_back(
                    i + 1 +
                    static_cast<std::uint32_t>(rng.nextBounded(span)));
            break;
          }

          default:
            panic("unreachable terminator choice");
        }
    }

    return static_cast<std::uint64_t>(total_cost()) + 1;
}

/**
 * Build one streaming-loop function: a large straight-line body whose
 * footprint rivals or exceeds the I-cache, wrapped in a single loop.
 * Block N-2 is the latch; block N-1 returns.
 */
std::uint64_t
buildBigLoopFunction(Function &func, const WorkloadParams &p, Rng &rng,
                     const std::vector<CalleeCandidate> &leaf_pool)
{
    const auto nblocks = static_cast<std::uint32_t>(
        rng.nextRange(p.bigLoopBlocksLo, p.bigLoopBlocksHi));
    func.blocks.resize(nblocks);
    func.isBigLoop = true;

    std::uint64_t body = 0;
    for (std::uint32_t i = 0; i < nblocks; ++i) {
        BasicBlock &b = func.blocks[i];
        b.numInstrs = static_cast<std::uint32_t>(
            rng.nextRange(p.instrsPerBlockLo, p.instrsPerBlockHi));
        body += b.numInstrs;

        if (i + 1 == nblocks) {
            b.term = TermKind::Return;
        } else if (i + 2 == nblocks) {
            b.term = TermKind::CondLoop;
            b.targetBlock = 0;
            b.loopTripMean = static_cast<std::uint32_t>(
                rng.nextRange(p.bigLoopTripLo, p.bigLoopTripHi));
        } else if (!leaf_pool.empty() && rng.nextBool(0.02)) {
            // Calls to shared leaf helpers from inside the loop: those
            // helpers are *live* in this context (reused every
            // iteration) but *dead* when the same helpers are reached
            // from scan code — the context split only path-history
            // prediction can learn.
            b.term = TermKind::Call;
            const CalleeCandidate &callee =
                leaf_pool[rng.nextBounded(leaf_pool.size())];
            b.callees.push_back(callee.func);
            body += callee.cost;
        } else if (rng.nextBool(0.12)) {
            b.term = TermKind::Jump;
            const std::uint32_t span = std::min<std::uint32_t>(
                3, nblocks - 2 - i);
            b.targetBlock =
                i + 1 + static_cast<std::uint32_t>(rng.nextBounded(span));
        } else if (rng.nextBool(0.25)) {
            // Short biased skips inside the body: the loop still
            // touches nearly all of its footprint every iteration but
            // exercises the direction predictor and BTB.
            b.term = TermKind::CondForward;
            const std::uint32_t span = std::min<std::uint32_t>(
                3, nblocks - 2 - i);
            b.targetBlock =
                i + 1 + static_cast<std::uint32_t>(rng.nextBounded(span));
            b.takenBias = rng.nextBool(0.5)
                              ? 0.05 + rng.nextDouble() * 0.10
                              : 0.85 + rng.nextDouble() * 0.10;
        } else {
            b.term = TermKind::None;
        }
    }
    return body * func.blocks[nblocks - 2].loopTripMean + 1;
}

/**
 * Build one stub farm: tiny blocks each ending in a short taken jump.
 * One I-cache block holds ~8 stubs, so a farm floods the BTB with far
 * more taken sites than it occupies I-cache blocks.
 */
std::uint64_t
buildStubFarm(Function &func, const WorkloadParams &p, Rng &rng)
{
    const auto nblocks = static_cast<std::uint32_t>(
        rng.nextRange(p.stubBlocksLo, p.stubBlocksHi));
    func.blocks.resize(nblocks);
    func.isStubFarm = true;

    std::uint64_t cost = 0;
    for (std::uint32_t i = 0; i < nblocks; ++i) {
        BasicBlock &b = func.blocks[i];
        b.numInstrs = 1 + static_cast<std::uint32_t>(rng.nextBounded(2));
        cost += b.numInstrs;
        if (i + 1 == nblocks) {
            b.term = TermKind::Return;
        } else {
            b.term = TermKind::Jump;
            const std::uint32_t span = std::min<std::uint32_t>(
                2, nblocks - 1 - i);
            b.targetBlock =
                i + 1 + static_cast<std::uint32_t>(rng.nextBounded(span));
        }
    }
    return cost;
}

/** Build one straight-line scan function (cold, rarely reused code). */
std::uint64_t
buildScanFunction(Function &func, const WorkloadParams &p, Rng &rng,
                  const std::vector<CalleeCandidate> &leaf_pool)
{
    const auto nblocks = static_cast<std::uint32_t>(
        rng.nextRange(p.scanBlocksLo, p.scanBlocksHi));
    func.blocks.resize(nblocks);
    func.isScan = true;

    Addr addr = func.entry;
    std::uint64_t cost = 0;
    for (std::uint32_t i = 0; i < nblocks; ++i) {
        BasicBlock &b = func.blocks[i];
        b.start = addr;
        b.numInstrs = static_cast<std::uint32_t>(
            rng.nextRange(p.instrsPerBlockLo, p.instrsPerBlockHi));
        addr += static_cast<Addr>(b.numInstrs) * p.instBytes;
        cost += b.numInstrs;

        if (i + 1 == nblocks) {
            b.term = TermKind::Return;
        } else if (!leaf_pool.empty() && rng.nextBool(0.20)) {
            // Scans call the same shared leaf helpers that hot code
            // calls — dead in this context, live in the hot one.
            b.term = TermKind::Call;
            const CalleeCandidate &callee =
                leaf_pool[rng.nextBounded(leaf_pool.size())];
            b.callees.push_back(callee.func);
            cost += callee.cost;
        } else if (rng.nextBool(0.12)) {
            // Short taken jumps: cold BTB allocations that are dead on
            // arrival — recurring dead-entry traffic that cycles
            // through the BTB and evicts slow-live entries under LRU.
            b.term = TermKind::Jump;
            const std::uint32_t span = std::min<std::uint32_t>(
                3, nblocks - 1 - i);
            b.targetBlock =
                i + 1 + static_cast<std::uint32_t>(rng.nextBounded(span));
        } else if (rng.nextBool(0.3)) {
            // Occasional short forward skip, lightly biased, so scans
            // still exercise the direction predictor.
            b.term = TermKind::CondForward;
            const std::uint32_t span = std::min<std::uint32_t>(
                3, nblocks - 1 - i);
            b.targetBlock =
                i + 1 + static_cast<std::uint32_t>(rng.nextBounded(span));
            b.takenBias = 0.05 + rng.nextDouble() * 0.15;
        } else {
            b.term = TermKind::None;
        }
    }
    return cost;
}

} // anonymous namespace

Program
generateProgram(const WorkloadParams &p)
{
    GHRP_ASSERT(p.numModules >= 1);
    Program program;
    program.instBytes = p.instBytes;
    program.modules.resize(p.numModules);

    Rng rng(p.seed);

    // ---- plan function layout -------------------------------------
    // Function 0 is the dispatcher; the rest are dealt to modules.
    enum class Kind : std::uint8_t { Regular, Scan, BigLoop, StubFarm };
    struct Plan
    {
        std::uint32_t module;
        Kind kind;
    };
    std::vector<Plan> plans;
    plans.push_back({0, Kind::Regular});  // dispatcher placeholder
    for (std::uint32_t m = 0; m < p.numModules; ++m) {
        const auto nfuncs = static_cast<std::uint32_t>(
            rng.nextRange(p.funcsPerModuleLo, p.funcsPerModuleHi));
        for (std::uint32_t f = 0; f < nfuncs; ++f) {
            Kind kind = Kind::Regular;
            const double roll = rng.nextDouble();
            if (roll < p.scanCodeFraction)
                kind = Kind::Scan;
            else if (roll < p.scanCodeFraction + p.bigLoopFraction)
                kind = Kind::BigLoop;
            else if (roll < p.scanCodeFraction + p.bigLoopFraction +
                                p.stubFarmFraction)
                kind = Kind::StubFarm;
            plans.push_back({m, kind});
        }
    }

    // Shuffle non-dispatcher plans so module code interleaves in the
    // address space (real binaries do not lay modules out contiguously
    // after hot/cold splitting and LTO).
    for (std::size_t i = plans.size() - 1; i > 1; --i) {
        const std::size_t j = 1 + rng.nextBounded(i);
        std::swap(plans[i], plans[j]);
    }

    // ---- lay out address ranges ------------------------------------
    // Entry addresses must be known before bodies are generated (a
    // caller needs its callees' entries), but bodies are generated in
    // reverse order (a caller needs its callees' costs). So: reserve a
    // generous address span per function first, then generate bodies,
    // then compact the layout.
    program.functions.resize(plans.size());

    // ---- build bodies in reverse index order ------------------------
    std::vector<std::uint64_t> cost(plans.size(), 0);
    for (std::size_t fi = plans.size() - 1; fi >= 1; --fi) {
        Function &func = program.functions[fi];
        func.module = plans[fi].module;
        func.entry = 0;  // assigned during compaction below

        if (plans[fi].kind != Kind::Regular) {
            // Shared leaf helpers: cheap regular functions anywhere
            // later in the DAG. Both scans and big loops call them, so
            // the same helper blocks see dead and live contexts.
            std::vector<CalleeCandidate> leaves;
            for (std::size_t ci = fi + 1; ci < plans.size(); ++ci)
                if (plans[ci].kind == Kind::Regular && cost[ci] <= 600)
                    leaves.push_back(
                        {static_cast<std::uint32_t>(ci), cost[ci]});
            if (plans[fi].kind == Kind::Scan)
                cost[fi] = buildScanFunction(func, p, rng, leaves);
            else if (plans[fi].kind == Kind::BigLoop)
                cost[fi] = buildBigLoopFunction(func, p, rng, leaves);
            else
                cost[fi] = buildStubFarm(func, p, rng);
        } else {
            // Callee pool: same-module later regular functions plus a
            // slice of cross-module ones (DAG: callee index > fi).
            // Scans and big loops are dispatcher-only.
            std::vector<CalleeCandidate> pool;
            for (std::size_t ci = fi + 1; ci < plans.size(); ++ci) {
                if (plans[ci].kind != Kind::Regular)
                    continue;
                const bool same = plans[ci].module == plans[fi].module;
                if (same || rng.nextBool(p.crossModuleCallFraction))
                    pool.push_back({static_cast<std::uint32_t>(ci),
                                    cost[ci]});
            }
            cost[fi] = buildRegularFunction(func, p, rng, pool,
                                            p.maxFunctionCost);
        }
        program.modules[plans[fi].module].push_back(
            static_cast<std::uint32_t>(fi));
    }

    // Dispatcher (function 0): B0 filler, B1 indirect call site, B2
    // loop latch back to B0, B3 return. The executor steers the B1
    // callee choice by phase.
    {
        Function &main_fn = program.functions[0];
        main_fn.module = 0;
        main_fn.blocks.resize(4);
        main_fn.blocks[0].numInstrs = 4;
        main_fn.blocks[0].term = TermKind::None;
        main_fn.blocks[1].numInstrs = 2;
        main_fn.blocks[1].term = TermKind::IndirectCall;
        main_fn.blocks[2].numInstrs = 2;
        main_fn.blocks[2].term = TermKind::CondLoop;
        main_fn.blocks[2].targetBlock = 0;
        main_fn.blocks[2].loopTripMean = 1u << 20;
        main_fn.blocks[3].numInstrs = 1;
        main_fn.blocks[3].term = TermKind::Return;

        for (std::size_t fi = 1; fi < program.functions.size(); ++fi)
            main_fn.blocks[1].callees.push_back(
                static_cast<std::uint32_t>(fi));
        if (main_fn.blocks[1].callees.empty())
            fatal("workload parameters produced a program with no callees");
    }

    // ---- compact address layout -------------------------------------
    Addr addr = p.codeBase;
    for (Function &func : program.functions) {
        func.entry = addr;
        for (BasicBlock &b : func.blocks) {
            b.start = addr;
            addr += static_cast<Addr>(b.numInstrs) * p.instBytes;
        }
        addr += p.functionGapBytes;
        // Align function starts as compilers do.
        addr = (addr + 63) & ~Addr{63};
    }

    validateProgram(program);
    return program;
}

bool
isScanFunction(const Program &program, std::uint32_t func)
{
    GHRP_ASSERT(func < program.functions.size());
    return program.functions[func].isScan;
}

} // namespace ghrp::workload

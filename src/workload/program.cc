#include "workload/program.hh"

#include "util/logging.hh"

namespace ghrp::workload
{

void
validateProgram(const Program &program)
{
    if (program.functions.empty())
        panic("program has no functions");
    if (program.mainFunction >= program.functions.size())
        panic("main function index out of range");

    for (std::size_t fi = 0; fi < program.functions.size(); ++fi) {
        const Function &f = program.functions[fi];
        if (f.blocks.empty())
            panic("function %zu has no blocks", fi);
        if (f.blocks.front().start != f.entry)
            panic("function %zu entry does not match first block", fi);

        Addr expected = f.entry;
        for (std::size_t bi = 0; bi < f.blocks.size(); ++bi) {
            const BasicBlock &b = f.blocks[bi];
            if (b.numInstrs == 0)
                panic("function %zu block %zu is empty", fi, bi);
            if (b.start != expected)
                panic("function %zu block %zu not contiguous", fi, bi);
            expected = b.fallThrough(program.instBytes);

            switch (b.term) {
              case TermKind::CondForward:
                if (b.targetBlock <= bi || b.targetBlock >= f.blocks.size())
                    panic("function %zu block %zu: bad forward target",
                          fi, bi);
                break;
              case TermKind::CondLoop:
                if (b.targetBlock > bi)
                    panic("function %zu block %zu: loop target not backward",
                          fi, bi);
                break;
              case TermKind::Jump:
                if (b.targetBlock >= f.blocks.size())
                    panic("function %zu block %zu: bad jump target", fi, bi);
                break;
              case TermKind::Call:
              case TermKind::IndirectCall:
                if (b.callees.empty())
                    panic("function %zu block %zu: call with no callees",
                          fi, bi);
                for (std::uint32_t callee : b.callees)
                    if (callee >= program.functions.size())
                        panic("function %zu block %zu: callee out of range",
                              fi, bi);
                break;
              case TermKind::IndirectJump:
                if (b.switchTargets.empty())
                    panic("function %zu block %zu: switch with no targets",
                          fi, bi);
                for (std::uint32_t t : b.switchTargets)
                    if (t >= f.blocks.size())
                        panic("function %zu block %zu: switch target range",
                              fi, bi);
                break;
              case TermKind::None:
                if (bi + 1 >= f.blocks.size())
                    panic("function %zu: last block falls through", fi);
                break;
              case TermKind::Return:
                break;
            }
        }

        // A function must be able to return; require the last block to
        // be a return so execution cannot run off the end.
        if (f.blocks.back().term != TermKind::Return &&
            f.blocks.back().term != TermKind::Jump &&
            f.blocks.back().term != TermKind::CondLoop &&
            f.blocks.back().term != TermKind::IndirectJump)
            panic("function %zu: last block cannot terminate", fi);
    }

    for (const auto &module : program.modules)
        for (std::uint32_t func : module)
            if (func >= program.functions.size())
                panic("module member out of range");
}

} // namespace ghrp::workload

#include "workload/params.hh"

#include <algorithm>
#include <cctype>

#include "util/logging.hh"
#include "util/random.hh"

namespace ghrp::workload
{

const char *
categoryName(Category category)
{
    switch (category) {
      case Category::ShortMobile:
        return "SHORT-MOBILE";
      case Category::LongMobile:
        return "LONG-MOBILE";
      case Category::ShortServer:
        return "SHORT-SERVER";
      case Category::LongServer:
        return "LONG-SERVER";
    }
    return "UNKNOWN";
}

Category
parseCategory(const std::string &name)
{
    std::string upper(name);
    std::transform(upper.begin(), upper.end(), upper.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    if (upper == "SHORT-MOBILE")
        return Category::ShortMobile;
    if (upper == "LONG-MOBILE")
        return Category::LongMobile;
    if (upper == "SHORT-SERVER")
        return Category::ShortServer;
    if (upper == "LONG-SERVER")
        return Category::LongServer;
    fatal("unknown workload category '%s'", name.c_str());
}

WorkloadParams
makeParams(Category category, std::uint64_t seed)
{
    WorkloadParams p;
    p.category = category;
    p.seed = seed;

    // A per-seed RNG perturbs the shape within the category envelope so
    // that different seeds give structurally different programs, the
    // way the 662 CBP-5 traces differ from one another.
    Rng rng(seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull);

    const bool server = category == Category::ShortServer ||
                        category == Category::LongServer;
    const bool longRun = category == Category::LongMobile ||
                         category == Category::LongServer;

    if (server) {
        // Large instruction footprints (several MB of code), deep
        // module structure, heavy BTB pressure: tens of thousands of
        // static branches, streaming loops bigger than the I-cache.
        p.numModules = 8 + static_cast<std::uint32_t>(rng.nextBounded(5));
        p.funcsPerModuleLo = 120;
        p.funcsPerModuleHi = 240;
        p.blocksPerFuncLo = 4;
        p.blocksPerFuncHi = 28;
        p.scanCodeFraction = 0.20 + rng.nextDouble() * 0.10;
        p.scanBlocksLo = 60;
        p.scanBlocksHi = 180;
        p.bigLoopFraction = 0.03 + rng.nextDouble() * 0.04;
        p.bigLoopBlocksLo = 1200;
        p.bigLoopBlocksHi = 2800;
        p.bigLoopTripLo = 2;
        p.bigLoopTripHi = 4;
        p.bigLoopCallProbability = 0.0015 + rng.nextDouble() * 0.0035;
        p.phaseLengthInstructions = 150'000 + rng.nextBounded(150'000);
        p.zipfSkew = 1.2 + rng.nextDouble() * 0.3;
        p.scanCallProbability = 0.08 + rng.nextDouble() * 0.06;
        p.crossModuleCallFraction = 0.08 + rng.nextDouble() * 0.08;
        p.maxFunctionCost = 10'000 + rng.nextBounded(10'000);
        // Stub farms are off by default: they flood the BTB with taken
        // sites but drown the learnable reuse structure. The btb-stress
        // workload (see bench/ablation_btb_stress) enables them.
        p.stubFarmFraction = 0.0;
    } else {
        // Mobile: smaller hot loops, code footprint a few times the
        // 64KB I-cache, fewer static branches (BTB mostly fits).
        p.numModules = 3 + static_cast<std::uint32_t>(rng.nextBounded(3));
        p.funcsPerModuleLo = 80;
        p.funcsPerModuleHi = 180;
        p.blocksPerFuncLo = 4;
        p.blocksPerFuncHi = 22;
        p.scanCodeFraction = 0.15 + rng.nextDouble() * 0.12;
        p.scanBlocksLo = 30;
        p.scanBlocksHi = 100;
        p.bigLoopFraction = 0.02 + rng.nextDouble() * 0.03;
        p.bigLoopBlocksLo = 500;
        p.bigLoopBlocksHi = 1500;
        p.bigLoopTripLo = 2;
        p.bigLoopTripHi = 6;
        p.bigLoopCallProbability = 0.004 + rng.nextDouble() * 0.008;
        p.phaseLengthInstructions = 200'000 + rng.nextBounded(300'000);
        p.zipfSkew = 1.3 + rng.nextDouble() * 0.4;
        p.scanCallProbability = 0.05 + rng.nextDouble() * 0.05;
        p.crossModuleCallFraction = 0.05 + rng.nextDouble() * 0.08;
        p.maxFunctionCost = 5'000 + rng.nextBounded(7'000);
        p.stubFarmFraction = 0.0;
    }

    p.targetInstructions = longRun ? 20'000'000 : 8'000'000;
    p.loopFraction = 0.16 + rng.nextDouble() * 0.12;
    p.callFraction = 0.12 + rng.nextDouble() * 0.10;
    p.indirectCallFraction = 0.02 + rng.nextDouble() * 0.03;
    p.switchFraction = 0.01 + rng.nextDouble() * 0.02;
    p.loopTripMeanLo = 2;
    p.loopTripMeanHi =
        8 + static_cast<std::uint32_t>(rng.nextBounded(24));
    p.biasSkew = 0.75 + rng.nextDouble() * 0.20;

    return p;
}

} // namespace ghrp::workload

/**
 * @file
 * Synthetic program model: a control-flow graph of functions and basic
 * blocks laid out in a flat code address space. Programs are generated
 * randomly (per workload category) and then *executed* to produce a
 * branch trace with fully consistent PCs, targets and fall-throughs —
 * the stand-in for the CBP-5 industrial traces.
 */

#ifndef GHRP_WORKLOAD_PROGRAM_HH
#define GHRP_WORKLOAD_PROGRAM_HH

#include <cstdint>
#include <vector>

#include "util/bit_ops.hh"

namespace ghrp::workload
{

/** How a basic block ends. */
enum class TermKind : std::uint8_t
{
    None,         ///< falls through into the next block (no branch)
    CondForward,  ///< conditional branch to a later block (if/else)
    CondLoop,     ///< backward conditional branch (loop latch)
    Jump,         ///< unconditional direct jump within the function
    Call,         ///< direct call to a single callee
    IndirectCall, ///< indirect call with a callee set
    IndirectJump, ///< indirect jump with a target-block set (switch)
    Return        ///< return to caller
};

/** One basic block: a run of sequential instructions plus terminator. */
struct BasicBlock
{
    Addr start = 0;            ///< address of the first instruction
    std::uint32_t numInstrs = 1; ///< instructions including terminator

    TermKind term = TermKind::None;
    double takenBias = 0.5;    ///< CondForward: probability taken
    std::uint32_t targetBlock = 0; ///< block index for cond/jump/loop
    std::uint32_t loopTripMean = 4; ///< CondLoop: mean trip count

    std::vector<std::uint32_t> callees;       ///< function indices
    std::vector<std::uint32_t> switchTargets; ///< block indices

    /** Address of the terminator (last) instruction. */
    Addr
    terminatorPc(std::uint32_t inst_bytes) const
    {
        return start + static_cast<Addr>(numInstrs - 1) * inst_bytes;
    }

    /** Fall-through address (first instruction after the block). */
    Addr
    fallThrough(std::uint32_t inst_bytes) const
    {
        return start + static_cast<Addr>(numInstrs) * inst_bytes;
    }
};

/** A function: contiguously laid-out basic blocks. */
struct Function
{
    Addr entry = 0;
    std::vector<BasicBlock> blocks;
    std::uint32_t module = 0;  ///< module (code region) this belongs to
    bool isScan = false;       ///< long straight-line rarely-reused code
    /** Streaming loop whose body footprint can exceed the I-cache —
     *  the pattern where recency-based replacement thrashes. */
    bool isBigLoop = false;
    /** Stub farm: dense 1-2 instruction blocks each ending in a taken
     *  jump (PLT/jump-table-like code). Floods the BTB with an order
     *  of magnitude more taken sites than I-cache blocks. */
    bool isStubFarm = false;

    /** Total size of the function in bytes. */
    std::uint64_t
    sizeBytes(std::uint32_t inst_bytes) const
    {
        std::uint64_t instrs = 0;
        for (const BasicBlock &b : blocks)
            instrs += b.numInstrs;
        return instrs * inst_bytes;
    }
};

/** A complete synthetic program. */
struct Program
{
    std::uint32_t instBytes = 4;
    std::vector<Function> functions;
    /** Function indices grouped by module, for phase scheduling. */
    std::vector<std::vector<std::uint32_t>> modules;
    /** Index of the dispatcher ("main") function; always 0. */
    std::uint32_t mainFunction = 0;

    /** Total code footprint in bytes. */
    std::uint64_t
    footprintBytes() const
    {
        std::uint64_t total = 0;
        for (const Function &f : functions)
            total += f.sizeBytes(instBytes);
        return total;
    }
};

/**
 * Validate structural invariants of a program: block addresses are
 * contiguous, terminator targets are in range, callee/switch sets are
 * non-empty where required. Calls panic() on violation (generator bug).
 */
void validateProgram(const Program &program);

} // namespace ghrp::workload

#endif // GHRP_WORKLOAD_PROGRAM_HH

/**
 * @file
 * Random program generation: builds a Program (control-flow graph)
 * matching a WorkloadParams envelope. Generation is deterministic for
 * a given parameter set (including its seed).
 */

#ifndef GHRP_WORKLOAD_GENERATOR_HH
#define GHRP_WORKLOAD_GENERATOR_HH

#include "workload/params.hh"
#include "workload/program.hh"

namespace ghrp::workload
{

/**
 * Generate a synthetic program.
 *
 * Structure: function 0 is a dispatcher with an indirect call site used
 * by the executor to drive phase-based scheduling. The remaining
 * functions are grouped into modules and split between "regular"
 * functions (loops, calls, biased conditionals) and long straight-line
 * "scan" functions that are touched rarely and become dead-block
 * fodder. The static call graph is a DAG (callee index > caller index)
 * so execution cannot recurse unboundedly.
 */
Program generateProgram(const WorkloadParams &params);

/** True when function @p func of @p program is a scan function. */
bool isScanFunction(const Program &program, std::uint32_t func);

} // namespace ghrp::workload

#endif // GHRP_WORKLOAD_GENERATOR_HH

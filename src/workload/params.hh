/**
 * @file
 * Generation and execution parameters for the synthetic workloads,
 * with presets for the four CBP-5 categories (SHORT/LONG x
 * MOBILE/SERVER).
 */

#ifndef GHRP_WORKLOAD_PARAMS_HH
#define GHRP_WORKLOAD_PARAMS_HH

#include <cstdint>
#include <string>

namespace ghrp::workload
{

/** The four workload categories of the CBP-5 suite. */
enum class Category : std::uint8_t
{
    ShortMobile,
    LongMobile,
    ShortServer,
    LongServer
};

/** Human-readable category tag, matching the paper's spelling. */
const char *categoryName(Category category);

/** Knobs controlling program shape and dynamic behaviour. */
struct WorkloadParams
{
    Category category = Category::ShortMobile;
    std::uint64_t seed = 1;

    // --- static program shape -------------------------------------
    std::uint32_t numModules = 4;       ///< independent code regions
    std::uint32_t funcsPerModuleLo = 8; ///< functions per module (min)
    std::uint32_t funcsPerModuleHi = 20;///< functions per module (max)
    std::uint32_t blocksPerFuncLo = 4;  ///< basic blocks per function
    std::uint32_t blocksPerFuncHi = 24;
    std::uint32_t instrsPerBlockLo = 2; ///< instructions per block
    std::uint32_t instrsPerBlockHi = 14;

    double callFraction = 0.18;     ///< blocks ending in a direct call
    double indirectCallFraction = 0.03; ///< ... in an indirect call
    double loopFraction = 0.22;     ///< blocks that are loop latches
    double switchFraction = 0.02;   ///< blocks ending in indirect jumps
    double crossModuleCallFraction = 0.10; ///< callees outside module

    std::uint32_t loopTripMeanLo = 2;  ///< loop trip-count mean range
    std::uint32_t loopTripMeanHi = 24;
    double biasSkew = 0.85;         ///< fraction of strongly biased
                                    ///< conditionals (bias >0.9 or <0.1)

    /** Fraction of each module that is "cold scan" code: long
     *  straight-line functions touched rarely and never reused soon —
     *  the dead-block fodder that predictive replacement exploits. */
    double scanCodeFraction = 0.25;
    std::uint32_t scanBlocksLo = 30;  ///< blocks per scan function
    std::uint32_t scanBlocksHi = 120;

    /** Fraction of each module that is streaming-loop code: a loop
     *  whose body footprint rivals or exceeds the I-cache, re-executed
     *  a few times. Recency-based replacement thrashes on these;
     *  reuse-predictive policies keep a resident subset. */
    double bigLoopFraction = 0.05;
    std::uint32_t bigLoopBlocksLo = 250;  ///< body blocks per big loop
    std::uint32_t bigLoopBlocksHi = 900;
    std::uint32_t bigLoopTripLo = 2;      ///< loop trip-count range
    std::uint32_t bigLoopTripHi = 6;

    /** Fraction of each module that is stub-farm code, plus its
     *  shape: many tiny blocks, each ending in a short taken jump. */
    double stubFarmFraction = 0.012;
    std::uint32_t stubBlocksLo = 600;  ///< jump stubs per farm
    std::uint32_t stubBlocksHi = 1500;

    // --- dynamic behaviour ----------------------------------------
    std::uint64_t targetInstructions = 4'000'000;
    std::uint64_t phaseLengthInstructions = 400'000;
    double zipfSkew = 1.2;          ///< function-popularity skew
    double scanCallProbability = 0.04; ///< per-dispatch chance of a scan
    double bigLoopCallProbability = 0.05; ///< ... of a streaming loop
    double stubCallProbability = 0.05;    ///< ... of a stub farm
    std::uint32_t maxCallDepth = 10;

    /**
     * Upper bound on a function's *expected subtree cost* (its own
     * body including loop multiplicities plus everything it calls, in
     * instructions). The generator enforces this bottom-up so one
     * dispatcher call cannot blow through the whole instruction budget
     * inside a single call tree.
     */
    std::uint64_t maxFunctionCost = 15'000;

    /** Base of the code address space (functions laid out upward). */
    std::uint64_t codeBase = 0x400000;
    std::uint32_t instBytes = 4;
    std::uint32_t functionGapBytes = 64; ///< padding between functions
};

/**
 * Preset parameters for one category. The seed perturbs the static
 * shape within the category's ranges, so two seeds of the same
 * category produce structurally different programs.
 */
WorkloadParams makeParams(Category category, std::uint64_t seed);

/** Parse "SHORT-MOBILE" etc. (case-insensitive). fatal() on error. */
Category parseCategory(const std::string &name);

} // namespace ghrp::workload

#endif // GHRP_WORKLOAD_PARAMS_HH

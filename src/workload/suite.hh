/**
 * @file
 * Workload suite construction: the reproduction's stand-in for the 662
 * CBP-5 traces. A suite is a list of (category, seed) specs; traces
 * are generated lazily one at a time so a large suite does not need to
 * be resident in memory.
 */

#ifndef GHRP_WORKLOAD_SUITE_HH
#define GHRP_WORKLOAD_SUITE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/branch_record.hh"
#include "workload/params.hh"

namespace ghrp::workload
{

/** Identity of one synthetic benchmark. */
struct TraceSpec
{
    Category category = Category::ShortMobile;
    std::uint64_t seed = 1;
    std::string name;
};

/**
 * Build a suite of @p num_traces specs cycling through the four
 * categories (the CBP-5 mix). Per-trace seeds come from the pure
 * ghrp::traceSeed(base_seed, index) derivation, so each spec — and the
 * trace generated from it — is independent of every other trace in the
 * suite.
 */
std::vector<TraceSpec> makeSuite(std::uint32_t num_traces,
                                 std::uint64_t base_seed = 42);

/**
 * Generate the trace for one spec. Pure: the result depends only on
 * the arguments, and concurrent calls on distinct specs (or even the
 * same spec) are safe — the generator keeps no global state.
 *
 * @param spec benchmark identity.
 * @param instruction_override when nonzero, overrides the category's
 *        default dynamic instruction budget (used to scale experiments
 *        up or down from the command line).
 */
trace::Trace buildTrace(const TraceSpec &spec,
                        std::uint64_t instruction_override = 0);

} // namespace ghrp::workload

#endif // GHRP_WORKLOAD_SUITE_HH

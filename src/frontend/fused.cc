#include "frontend/fused.hh"

#include <algorithm>

namespace ghrp::frontend
{

FusedSim::FusedSim(const FrontendConfig &base,
                   const std::vector<PolicySpec> &policies)
{
    lanes.reserve(policies.size());
    for (const PolicySpec &policy : policies) {
        FrontendConfig cfg = base;
        cfg.policy = policy;
        lanes.push_back(std::make_unique<FrontendSim>(cfg));
    }
}

std::vector<FrontendResult>
FusedSim::run(const trace::DecodedTrace &decoded)
{
    for (auto &lane : lanes)
        lane->beginRun(decoded);

    // Chunk-major walk: pull a window of the decoded SoA stream into
    // cache once, then let every lane consume it before moving on.
    // Each lane still sees records 0..n-1 in order, exactly once, so
    // this is the per-leg walk with a different memory-access shape.
    const std::size_t n = decoded.numRecords();
    for (std::size_t begin = 0; begin < n; begin += kChunkRecords) {
        const std::size_t end = std::min(begin + kChunkRecords, n);
        for (auto &lane : lanes)
            for (std::size_t i = begin; i < end; ++i)
                lane->stepRecord(decoded, i);
    }

    std::vector<FrontendResult> results;
    results.reserve(lanes.size());
    for (auto &lane : lanes)
        results.push_back(lane->finishRun());
    return results;
}

std::vector<FrontendResult>
simulateFused(const FrontendConfig &base,
              const std::vector<PolicySpec> &policies,
              const trace::DecodedTrace &decoded)
{
    FusedSim sim(base, policies);
    return sim.run(decoded);
}

} // namespace ghrp::frontend

#include "frontend/frontend.hh"

#include <algorithm>
#include <cctype>
#include <tuple>

#include "branch/perceptron.hh"
#include "cache/basic_policies.hh"
#include "trace/fetch_stream.hh"
#include "util/logging.hh"

namespace ghrp::frontend
{

const char *
policyName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::Lru:
        return "LRU";
      case PolicyKind::Random:
        return "Random";
      case PolicyKind::Fifo:
        return "FIFO";
      case PolicyKind::Srrip:
        return "SRRIP";
      case PolicyKind::Brrip:
        return "BRRIP";
      case PolicyKind::Drrip:
        return "DRRIP";
      case PolicyKind::Sdbp:
        return "SDBP";
      case PolicyKind::Ship:
        return "SHiP";
      case PolicyKind::Ghrp:
        return "GHRP";
      case PolicyKind::Duel:
        return "duel";  // bare kind; specs render via policyName(spec)
    }
    return "unknown";
}

namespace
{

/** Case-insensitive static-kind lookup; false on unknown (or "duel",
 *  which is only valid as a full PolicySpec). */
bool
tryParseKind(const std::string &name, PolicyKind &out)
{
    std::string upper(name);
    std::transform(upper.begin(), upper.end(), upper.begin(),
                   [](unsigned char c) { return std::toupper(c); });
    for (PolicyKind kind : allPolicyKinds()) {
        std::string candidate(policyName(kind));
        std::transform(candidate.begin(), candidate.end(),
                       candidate.begin(),
                       [](unsigned char c) { return std::toupper(c); });
        if (upper == candidate) {
            out = kind;
            return true;
        }
    }
    return false;
}

} // anonymous namespace

PolicyKind
parsePolicy(const std::string &name)
{
    PolicyKind kind;
    if (!tryParseKind(name, kind))
        fatal("unknown replacement policy '%s'", name.c_str());
    return kind;
}

const std::vector<PolicyKind> &
allPolicyKinds()
{
    static const std::vector<PolicyKind> kinds = {
        PolicyKind::Lru,   PolicyKind::Random, PolicyKind::Fifo,
        PolicyKind::Srrip, PolicyKind::Brrip,  PolicyKind::Drrip,
        PolicyKind::Sdbp,  PolicyKind::Ship,   PolicyKind::Ghrp};
    return kinds;
}

namespace
{

/** Normalized comparison key: non-duel specs ignore the duel fields,
 *  so PolicySpec(kind) equals any spec of the same kind. */
std::tuple<int, int, int, std::uint32_t, std::uint32_t>
specKey(const PolicySpec &s)
{
    const bool d = s.isDuel();
    return {static_cast<int>(s.kind),
            d ? static_cast<int>(s.duelA) : 0,
            d ? static_cast<int>(s.duelB) : 0, d ? s.duelPselMax : 0,
            d ? s.duelLeaders : 0};
}

} // anonymous namespace

bool
operator==(const PolicySpec &a, const PolicySpec &b)
{
    return specKey(a) == specKey(b);
}

bool
operator<(const PolicySpec &a, const PolicySpec &b)
{
    return specKey(a) < specKey(b);
}

std::string
policyName(const PolicySpec &spec)
{
    if (!spec.isDuel())
        return policyName(spec.kind);
    const PolicySpec defaults;
    std::string out = std::string("duel:") + policyName(spec.duelA) +
                      "," + policyName(spec.duelB);
    if (spec.duelPselMax != defaults.duelPselMax)
        out += ",psel=" + std::to_string(spec.duelPselMax);
    if (spec.duelLeaders != defaults.duelLeaders)
        out += ",leaders=" + std::to_string(spec.duelLeaders);
    return out;
}

bool
tryParsePolicySpec(const std::string &name, PolicySpec &out)
{
    std::string lower(name);
    std::transform(lower.begin(), lower.end(), lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (lower.rfind("duel:", 0) != 0) {
        PolicyKind kind;
        if (!tryParseKind(name, kind))
            return false;
        out = PolicySpec(kind);
        return true;
    }

    // duel:<A>,<B>[,psel=N][,leaders=K]
    std::vector<std::string> tokens;
    std::string rest = name.substr(5);
    std::size_t begin = 0;
    while (begin <= rest.size()) {
        const std::size_t comma = rest.find(',', begin);
        tokens.push_back(rest.substr(
            begin, comma == std::string::npos ? comma : comma - begin));
        if (comma == std::string::npos)
            break;
        begin = comma + 1;
    }
    if (tokens.size() < 2)
        return false;

    PolicySpec spec;
    spec.kind = PolicyKind::Duel;
    if (!tryParseKind(tokens[0], spec.duelA) ||
        !tryParseKind(tokens[1], spec.duelB))
        return false;
    for (std::size_t i = 2; i < tokens.size(); ++i) {
        std::string key(tokens[i]);
        std::transform(key.begin(), key.end(), key.begin(),
                       [](unsigned char c) { return std::tolower(c); });
        const std::size_t eq = key.find('=');
        if (eq == std::string::npos)
            return false;
        const std::string value = key.substr(eq + 1);
        if (value.empty() ||
            value.find_first_not_of("0123456789") != std::string::npos)
            return false;
        const unsigned long parsed = std::stoul(value);
        if (parsed == 0 || parsed > 1u << 20)
            return false;
        if (key.compare(0, eq, "psel") == 0)
            spec.duelPselMax = static_cast<std::uint32_t>(parsed);
        else if (key.compare(0, eq, "leaders") == 0)
            spec.duelLeaders = static_cast<std::uint32_t>(parsed);
        else
            return false;
    }
    out = spec;
    return true;
}

PolicySpec
parsePolicySpec(const std::string &name)
{
    PolicySpec spec;
    if (!tryParsePolicySpec(name, spec))
        fatal("unknown replacement policy '%s' (expected a policy name "
              "or duel:<A>,<B>[,psel=N][,leaders=K])",
              name.c_str());
    return spec;
}

std::vector<PolicySpec>
parsePolicyList(const std::string &csv)
{
    std::vector<std::string> tokens;
    std::size_t begin = 0;
    while (begin <= csv.size()) {
        const std::size_t comma = csv.find(',', begin);
        std::string token = csv.substr(
            begin, comma == std::string::npos ? comma : comma - begin);
        const std::size_t first = token.find_first_not_of(" \t");
        if (first == std::string::npos) {
            token.clear();
        } else {
            const std::size_t last = token.find_last_not_of(" \t");
            token = token.substr(first, last - first + 1);
        }
        if (!token.empty())
            tokens.push_back(std::move(token));
        if (comma == std::string::npos)
            break;
        begin = comma + 1;
    }

    const auto isLowerPrefix = [](const std::string &token,
                                  const char *prefix) {
        std::string lower(token);
        std::transform(lower.begin(), lower.end(), lower.begin(),
                       [](unsigned char c) { return std::tolower(c); });
        return lower.rfind(prefix, 0) == 0;
    };

    std::vector<PolicySpec> out;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        if (!isLowerPrefix(tokens[i], "duel:")) {
            out.push_back(parsePolicySpec(tokens[i]));
            continue;
        }
        // A duel spec spans commas: rejoin its second constituent and
        // any psel=/leaders= parameters before parsing.
        std::string spec = tokens[i];
        if (i + 1 < tokens.size())
            spec += "," + tokens[++i];
        while (i + 1 < tokens.size() &&
               (isLowerPrefix(tokens[i + 1], "psel=") ||
                isLowerPrefix(tokens[i + 1], "leaders=")))
            spec += "," + tokens[++i];
        out.push_back(parsePolicySpec(spec));
    }
    return out;
}

namespace
{

std::unique_ptr<branch::DirectionPredictor>
makeDirection(DirectionKind kind)
{
    switch (kind) {
      case DirectionKind::HashedPerceptron:
        return std::make_unique<branch::HashedPerceptron>();
      case DirectionKind::Gshare:
        return std::make_unique<branch::GsharePredictor>();
      case DirectionKind::Bimodal:
        return std::make_unique<branch::BimodalPredictor>();
    }
    panic("unknown direction predictor kind");
}

/** Construct a self-contained (non-GHRP) policy instance. */
std::unique_ptr<cache::ReplacementPolicy>
makeBasicPolicy(PolicyKind kind, const predictor::SdbpConfig &sdbp,
                const predictor::ShipConfig &ship, std::uint64_t seed)
{
    switch (kind) {
      case PolicyKind::Lru:
        return std::make_unique<cache::LruPolicy>();
      case PolicyKind::Random:
        return std::make_unique<cache::RandomPolicy>(seed);
      case PolicyKind::Fifo:
        return std::make_unique<cache::FifoPolicy>();
      case PolicyKind::Srrip:
        return std::make_unique<cache::SrripPolicy>();
      case PolicyKind::Brrip:
        return std::make_unique<cache::BrripPolicy>();
      case PolicyKind::Drrip:
        return std::make_unique<cache::DrripPolicy>();
      case PolicyKind::Sdbp:
        return std::make_unique<predictor::SdbpReplacement>(sdbp);
      case PolicyKind::Ship:
        return std::make_unique<predictor::ShipReplacement>(ship);
      case PolicyKind::Ghrp:
        panic("GHRP is constructed by the front-end, not the factory");
      case PolicyKind::Duel:
        panic("duel specs are constructed by the front-end, not the "
              "factory");
    }
    panic("unknown policy kind");
}

} // anonymous namespace

FrontendSim::FrontendSim(const FrontendConfig &config) : cfg(config)
{
    // One shared dead-block predictor whenever GHRP participates,
    // whether as the whole policy or as one duel constituent.
    if (cfg.policy.involvesGhrp())
        ghrpPredictor =
            std::make_unique<predictor::GhrpPredictor>(cfg.ghrp);

    // I-cache constituents use the same instance seed the single-
    // policy path uses, so duel:X,X is bit-identical to plain X for
    // every self-contained policy.
    const auto makeIcachePolicy =
        [&](PolicyKind kind) -> std::unique_ptr<cache::ReplacementPolicy> {
        if (kind == PolicyKind::Ghrp) {
            auto policy = std::make_unique<predictor::GhrpReplacement>(
                *ghrpPredictor);
            icacheGhrp = policy.get();
            return policy;
        }
        return makeBasicPolicy(kind, cfg.sdbp, cfg.ship, 0x1CACE);
    };

    if (cfg.policy.isDuel()) {
        const cache::DuelPolicy::Params params{
            static_cast<std::int64_t>(cfg.policy.duelPselMax),
            cfg.policy.duelLeaders};
        auto duel = std::make_unique<cache::DuelPolicy>(
            makeIcachePolicy(cfg.policy.duelA),
            makeIcachePolicy(cfg.policy.duelB), params,
            policyName(cfg.policy));
        icacheDuel = duel.get();
        icache = std::make_unique<cache::CacheModel<cache::NoPayload>>(
            cfg.icache, std::move(duel));
    } else {
        icache = std::make_unique<cache::CacheModel<cache::NoPayload>>(
            cfg.icache, makeIcachePolicy(cfg.policy.kind));
    }

    // BTB constituents: the GHRP one couples to the I-cache GHRP
    // metadata (or runs stand-alone under the dedicated-BTB ablation),
    // exactly as in a pure-GHRP run. The I-cache model exists by now.
    const auto makeBtbPolicy =
        [&](PolicyKind kind) -> std::unique_ptr<cache::ReplacementPolicy> {
        if (kind == PolicyKind::Ghrp) {
            if (cfg.ghrpDedicatedBtb)
                return std::make_unique<predictor::GhrpBtbDedicated>(
                    cfg.ghrp);
            return std::make_unique<predictor::GhrpBtbReplacement>(
                *ghrpPredictor, *icacheGhrp, *icache);
        }
        return makeBasicPolicy(kind, cfg.sdbp, cfg.ship, 0xB7B);
    };

    if (cfg.policy.isDuel()) {
        const cache::DuelPolicy::Params params{
            static_cast<std::int64_t>(cfg.policy.duelPselMax),
            cfg.policy.duelLeaders};
        auto duel = std::make_unique<cache::DuelPolicy>(
            makeBtbPolicy(cfg.policy.duelA),
            makeBtbPolicy(cfg.policy.duelB), params,
            policyName(cfg.policy));
        btbDuel = duel.get();
        btb = std::make_unique<branch::Btb>(cfg.btb, std::move(duel));
    } else {
        btb = std::make_unique<branch::Btb>(
            cfg.btb, makeBtbPolicy(cfg.policy.kind));
    }

    direction = makeDirection(cfg.direction);
    if (cfg.useIndirectPredictor)
        indirect = std::make_unique<branch::IndirectPredictor>(
            cfg.indirect);

    if (cfg.trackEfficiency) {
        icacheEff = std::make_unique<stats::EfficiencyTracker>(
            icache->numSets(), icache->numWays());
        icache->attachTracker(icacheEff.get());
        btbEff = std::make_unique<stats::EfficiencyTracker>(
            btb->cacheModel().numSets(), btb->cacheModel().numWays());
        btb->cacheModel().attachTracker(btbEff.get());
    }
}

FrontendSim::~FrontendSim() = default;

namespace
{

/** Phase-record ring capacity, matching the duel PSEL trajectory:
 *  beyond it adjacent records merge pairwise and the stride doubles,
 *  keeping the buffer bounded while staying a deterministic function
 *  of the access stream. */
constexpr std::size_t kPhaseCapacity = kPhaseTrajectoryCapacity;

/** Sum @p from's interval counters into @p into (identity fields —
 *  window id, instruction count, PSEL — are NOT touched). */
void
addPhaseCounters(frontend::PhaseRecord &into,
                 const frontend::PhaseRecord &from)
{
    into.icacheAccesses += from.icacheAccesses;
    into.icacheMisses += from.icacheMisses;
    into.icacheEvictions += from.icacheEvictions;
    into.btbAccesses += from.btbAccesses;
    into.btbMisses += from.btbMisses;
    into.btbEvictions += from.btbEvictions;
    into.condBranches += from.condBranches;
    into.condMispredicts += from.condMispredicts;
    into.btbTargetMismatches += from.btbTargetMismatches;
    into.deadHits += from.deadHits;
    into.liveHits += from.liveHits;
    into.deadEvictions += from.deadEvictions;
    into.liveEvictions += from.liveEvictions;
}

/** into += from - base, interval counters only. */
void
addPhaseDelta(frontend::PhaseRecord &into,
              const frontend::PhaseRecord &from,
              const frontend::PhaseRecord &base)
{
    into.icacheAccesses += from.icacheAccesses - base.icacheAccesses;
    into.icacheMisses += from.icacheMisses - base.icacheMisses;
    into.icacheEvictions += from.icacheEvictions - base.icacheEvictions;
    into.btbAccesses += from.btbAccesses - base.btbAccesses;
    into.btbMisses += from.btbMisses - base.btbMisses;
    into.btbEvictions += from.btbEvictions - base.btbEvictions;
    into.condBranches += from.condBranches - base.condBranches;
    into.condMispredicts += from.condMispredicts - base.condMispredicts;
    into.btbTargetMismatches +=
        from.btbTargetMismatches - base.btbTargetMismatches;
    into.deadHits += from.deadHits - base.deadHits;
    into.liveHits += from.liveHits - base.liveHits;
    into.deadEvictions += from.deadEvictions - base.deadEvictions;
    into.liveEvictions += from.liveEvictions - base.liveEvictions;
}

} // anonymous namespace

void
FrontendSim::phaseCapture(PhaseRecord &out) const
{
    const stats::AccessStats &ic = icache->accessStats();
    const stats::AccessStats &bt = btb->accessStats();
    out.icacheAccesses = ic.accesses;
    out.icacheMisses = ic.misses;
    out.icacheEvictions = ic.evictions;
    out.btbAccesses = bt.accesses;
    out.btbMisses = bt.misses;
    out.btbEvictions = bt.evictions;
    out.condBranches = pending.condBranches;
    out.condMispredicts = pending.condMispredicts;
    out.btbTargetMismatches = pending.btbTargetMismatches;
    const cache::PredictionOutcomes oi =
        icache->policy().predictionOutcomes();
    const cache::PredictionOutcomes ob =
        btb->cacheModel().policy().predictionOutcomes();
    out.deadHits = oi.deadHits + ob.deadHits;
    out.liveHits = oi.liveHits + ob.liveHits;
    out.deadEvictions = oi.deadEvictions + ob.deadEvictions;
    out.liveEvictions = oi.liveEvictions + ob.liveEvictions;
}

void
FrontendSim::phaseFoldReset()
{
    // The warm-up boundary zeroes the cache stats and branch counters
    // mid-window. Bank the interval accumulated so far, then rebase
    // the snapshot after the caller's resets so the window's counts
    // stay exact across the discontinuity.
    PhaseRecord cur;
    phaseCapture(cur);
    addPhaseDelta(phaseCarry, cur, phaseSnapshot);
    phaseSnapshot = PhaseRecord{};
    // Prediction outcomes are monotone (policies are not reset); keep
    // their baseline so the next delta does not double count them.
    phaseSnapshot.deadHits = cur.deadHits;
    phaseSnapshot.liveHits = cur.liveHits;
    phaseSnapshot.deadEvictions = cur.deadEvictions;
    phaseSnapshot.liveEvictions = cur.liveEvictions;
}

void
FrontendSim::phaseSample(std::uint64_t cum)
{
    PhaseRecord cur;
    phaseCapture(cur);
    addPhaseDelta(phasePending, cur, phaseSnapshot);
    addPhaseCounters(phasePending, phaseCarry);
    phaseCarry = PhaseRecord{};
    phaseSnapshot = cur;
    phasePending.window = phaseWindowId;
    phasePending.instructions = cum;
    phasePending.psel = icacheDuel ? icacheDuel->psel() : 0;

    if (++phasePendingCount < phaseStride)
        return;
    phaseRecords.push_back(phasePending);
    phasePending = PhaseRecord{};
    phasePendingCount = 0;
    if (phaseRecords.size() > kPhaseCapacity) {
        // Decimate: the odd record out returns to the accumulator (it
        // covers exactly half the doubled stride), then adjacent pairs
        // merge in place — counters summed, the later record's
        // identity kept — preserving the full time span.
        phasePending = phaseRecords.back();
        phaseRecords.pop_back();
        phasePendingCount = phaseStride;
        std::size_t w = 0;
        for (std::size_t r = 0; r + 1 < phaseRecords.size(); r += 2) {
            PhaseRecord merged = phaseRecords[r + 1];
            addPhaseCounters(merged, phaseRecords[r]);
            phaseRecords[w++] = merged;
        }
        phaseRecords.resize(w);
        phaseStride *= 2;
    }
}

FrontendResult
FrontendSim::run(const trace::DecodedTrace &dec)
{
    beginRun(dec);
    const std::size_t n = dec.numRecords();
    for (std::size_t i = 0; i < n; ++i)
        stepRecord(dec, i);
    return finishRun();
}

void
FrontendSim::beginRun(const trace::DecodedTrace &dec)
{
    // The decoded stream bakes in the fetch granularity; a mismatched
    // configuration would silently simulate the wrong block stream.
    GHRP_ASSERT(dec.blockBytes == cfg.icache.blockBytes);
    GHRP_ASSERT(dec.instBytes == cfg.instBytes);

    pending = FrontendResult{};
    pending.traceName = dec.name;
    pending.policy = policyName(cfg.policy);

    pending.totalInstructions = dec.totalInstructions();
    pending.warmupInstructions = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(
            cfg.warmupFraction *
            static_cast<double>(pending.totalInstructions)),
        cfg.warmupCapInstructions);

    pendingWarm = pending.warmupInstructions == 0;
    pendingBlockMask = ~static_cast<Addr>(cfg.icache.blockBytes - 1);

    // Arm the phase flight recorder; a saturated boundary keeps the
    // per-record check to one always-false compare when it is off.
    phaseRecords.clear();
    phasePending = PhaseRecord{};
    phaseSnapshot = PhaseRecord{};
    phaseCarry = PhaseRecord{};
    phasePendingCount = 0;
    phaseStride = 1;
    phaseWindowId = 0;
    phaseNextBoundary =
        cfg.phaseWindow == 0 ? ~std::uint64_t{0} : cfg.phaseWindow;
    // A pre-resolved direction stream replaces the per-leg predictor
    // simulation when it was resolved with this leg's predictor kind;
    // otherwise the predictor runs live (identical results, more work).
    pendingPreResolved =
        dec.hasDirectionStream() &&
        dec.directionKind == static_cast<int>(cfg.direction);
}

void
FrontendSim::stepRecord(const trace::DecodedTrace &dec, std::size_t i)
{
    FrontendResult &result = pending;
    const Addr block_mask = pendingBlockMask;
    const bool pre_resolved = pendingPreResolved;

    // ---- fetch ops of the run ending at this branch ------------
    // Fetch-buffer coalescing already happened at decode time; every
    // op here is a real I-cache access.
    const std::uint64_t op_end = dec.opBegin[i + 1];
    for (std::uint64_t op = dec.opBegin[i]; op < op_end; ++op) {
        const Addr fetch_pc = dec.fetchPc[op];
        const Addr block_addr = fetch_pc & block_mask;
        const cache::AccessOutcome out =
            icache->access(block_addr, fetch_pc);
        if (!out.hit && cfg.nextLinePrefetch > 0) {
            for (std::uint32_t p = 1; p <= cfg.nextLinePrefetch; ++p)
                icache->prefetch(
                    block_addr +
                        static_cast<Addr>(p) * cfg.icache.blockBytes,
                    fetch_pc);
        }
        if (ghrpPredictor) {
            // The fetch-address stream updates both the speculative
            // and the retired path history; in a trace-driven model
            // fetch and commit coincide.
            ghrpPredictor->updateSpecHistory(fetch_pc);
            ghrpPredictor->updateRetiredHistory(fetch_pc);
        }
    }

    const Addr pc = dec.brPc[i];
    const Addr target = dec.brTarget[i];
    const std::uint8_t meta = dec.brMeta[i];
    const bool taken = trace::branch_meta::taken(meta);

    // ---- direction prediction ----------------------------------
    if (trace::branch_meta::conditional(meta)) {
        ++result.condBranches;
        bool predicted;
        if (pre_resolved) {
            predicted = dec.dirPredictedTaken[i] != 0;
        } else {
            predicted = direction->predict(pc);
            direction->update(pc, taken);
        }
        const bool mispredicted = predicted != taken;
        if (mispredicted)
            ++result.condMispredicts;

        if (mispredicted && ghrpPredictor) {
            // Model wrong-path pollution of the speculative history
            // and its recovery from the retired history.
            const Addr wrong_base =
                predicted ? target : pc + cfg.instBytes;
            for (std::uint32_t w = 0; w < cfg.wrongPathNoise; ++w)
                ghrpPredictor->updateSpecHistory(
                    wrong_base + static_cast<Addr>(w) * cfg.instBytes);
            if (cfg.recoverGhrpHistory)
                ghrpPredictor->recoverHistory();
        }
    }

    // ---- BTB and RAS -------------------------------------------
    if (taken) {
        if (trace::branch_meta::isReturn(meta) && cfg.useRas) {
            ++result.rasReturns;
            if (ras.pop() != target)
                ++result.rasMispredicts;
        } else {
            // Indirect target prediction: the indirect predictor
            // (when attached) overrides the BTB's last-seen target.
            if (trace::branch_meta::indirect(meta)) {
                ++result.indirectBranches;
                std::optional<Addr> predicted;
                if (indirect)
                    predicted = indirect->predict(pc);
                if (!predicted)
                    predicted = btb->predictTarget(pc);
                if (!predicted || *predicted != target)
                    ++result.indirectMispredicts;
                if (indirect)
                    indirect->update(pc, target);
            }
            const branch::BtbResult br = btb->accessTaken(pc, target);
            if (br.hit && !br.targetMatched)
                ++result.btbTargetMismatches;
        }
    }
    if (trace::branch_meta::call(meta) && taken && cfg.useRas)
        ras.push(pc + cfg.instBytes);

    // ---- warm-up boundary ---------------------------------------
    if (!pendingWarm &&
        dec.cumInstructions[i] >= result.warmupInstructions) {
        pendingWarm = true;
        if (phaseNextBoundary != ~std::uint64_t{0})
            phaseFoldReset();
        icache->resetStats();
        btb->resetStats();
        result.condBranches = 0;
        result.condMispredicts = 0;
        result.btbTargetMismatches = 0;
        result.rasReturns = 0;
        result.rasMispredicts = 0;
        result.indirectBranches = 0;
        result.indirectMispredicts = 0;
    }

    // ---- phase flight recorder ----------------------------------
    if (dec.cumInstructions[i] >= phaseNextBoundary) {
        const std::uint64_t cum = dec.cumInstructions[i];
        phaseSample(cum);
        do {
            phaseNextBoundary += cfg.phaseWindow;
            ++phaseWindowId;
        } while (cum >= phaseNextBoundary);
    }
}

FrontendResult
FrontendSim::finishRun()
{
    FrontendResult result = std::move(pending);
    pending = FrontendResult{};

    result.measuredInstructions =
        result.totalInstructions >= result.warmupInstructions
            ? result.totalInstructions - result.warmupInstructions
            : 0;
    result.icache = icache->accessStats();
    result.btb = btb->accessStats();
    result.icacheMpki = result.icache.mpki(result.measuredInstructions);
    result.btbMpki = result.btb.mpki(result.measuredInstructions);

    if (icacheDuel) {
        result.hasDuel = true;
        result.icacheDuel = icacheDuel->telemetry();
    }
    if (btbDuel)
        result.btbDuel = btbDuel->telemetry();

    if (cfg.phaseWindow > 0) {
        // Only complete windows are committed — a trailing partial
        // window would make the trajectory depend on where the trace
        // happens to end rather than on the configured cadence.
        result.hasPhases = true;
        result.phases.window = cfg.phaseWindow;
        result.phases.stride = phaseStride;
        result.phases.records = std::move(phaseRecords);
        phaseRecords.clear();
    }

    if (icacheEff)
        icacheEff->finalize(icache->ticks());
    if (btbEff)
        btbEff->finalize(btb->cacheModel().ticks());

    return result;
}

FrontendResult
FrontendSim::run(const trace::Trace &tr)
{
    return run(trace::decodeTrace(tr, cfg.icache.blockBytes,
                                  cfg.instBytes));
}

FrontendResult
FrontendSim::runWalker(const trace::Trace &tr)
{
    FrontendResult result;
    result.traceName = tr.name;
    result.policy = policyName(cfg.policy);

    // One counting pre-pass through the canonical walker (rather than a
    // third, hand-rolled reimplementation of the fetch-run arithmetic)
    // gives the total needed to place the warm-up boundary.
    {
        trace::FetchStreamWalker counter(
            tr.entryPc, cfg.icache.blockBytes, cfg.instBytes);
        for (const trace::BranchRecord &rec : tr.records)
            counter.advance(rec, [](Addr) {});
        result.totalInstructions = counter.instructionCount();
    }
    result.warmupInstructions = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(
            cfg.warmupFraction *
            static_cast<double>(result.totalInstructions)),
        cfg.warmupCapInstructions);

    trace::FetchStreamWalker walker(tr.entryPc, cfg.icache.blockBytes,
                                    cfg.instBytes);
    bool warm = result.warmupInstructions == 0;
    // Fetch-buffer coalescing: consecutive fetch runs that stay within
    // the block just fetched do not re-access the I-cache (a real
    // front-end fetches the whole block once; short intra-block jumps
    // consume it from the fetch buffer).
    Addr last_block = ~Addr{0};

    for (const trace::BranchRecord &rec : tr.records) {
        // ---- fetch the sequential run ending at this branch --------
        const Addr run_start = walker.currentPc();
        walker.advance(rec, [&](Addr block_addr) {
            if (block_addr == last_block)
                return;
            last_block = block_addr;
            const Addr fetch_pc = std::max(run_start, block_addr);
            const cache::AccessOutcome out =
                icache->access(block_addr, fetch_pc);
            if (!out.hit && cfg.nextLinePrefetch > 0) {
                for (std::uint32_t n = 1; n <= cfg.nextLinePrefetch; ++n)
                    icache->prefetch(
                        block_addr +
                            static_cast<Addr>(n) * cfg.icache.blockBytes,
                        fetch_pc);
            }
            if (ghrpPredictor) {
                // The fetch-address stream updates both the speculative
                // and the retired path history; in a trace-driven model
                // fetch and commit coincide.
                ghrpPredictor->updateSpecHistory(fetch_pc);
                ghrpPredictor->updateRetiredHistory(fetch_pc);
            }
        });

        // ---- direction prediction ----------------------------------
        if (trace::isConditional(rec.type)) {
            ++result.condBranches;
            const bool predicted = direction->predict(rec.pc);
            const bool mispredicted = predicted != rec.taken;
            if (mispredicted)
                ++result.condMispredicts;
            direction->update(rec.pc, rec.taken);

            if (mispredicted && ghrpPredictor) {
                // Model wrong-path pollution of the speculative history
                // and its recovery from the retired history.
                const Addr wrong_base =
                    predicted ? rec.target : rec.pc + cfg.instBytes;
                for (std::uint32_t i = 0; i < cfg.wrongPathNoise; ++i)
                    ghrpPredictor->updateSpecHistory(
                        wrong_base + static_cast<Addr>(i) * cfg.instBytes);
                if (cfg.recoverGhrpHistory)
                    ghrpPredictor->recoverHistory();
            }
        }

        // ---- BTB and RAS -------------------------------------------
        if (rec.taken) {
            if (rec.type == trace::BranchType::Return && cfg.useRas) {
                ++result.rasReturns;
                if (ras.pop() != rec.target)
                    ++result.rasMispredicts;
            } else {
                // Indirect target prediction: the indirect predictor
                // (when attached) overrides the BTB's last-seen target.
                if (trace::isIndirect(rec.type)) {
                    ++result.indirectBranches;
                    std::optional<Addr> predicted;
                    if (indirect)
                        predicted = indirect->predict(rec.pc);
                    if (!predicted)
                        predicted = btb->predictTarget(rec.pc);
                    if (!predicted || *predicted != rec.target)
                        ++result.indirectMispredicts;
                    if (indirect)
                        indirect->update(rec.pc, rec.target);
                }
                const branch::BtbResult br =
                    btb->accessTaken(rec.pc, rec.target);
                if (br.hit && !br.targetMatched)
                    ++result.btbTargetMismatches;
            }
        }
        if (trace::isCall(rec.type) && rec.taken && cfg.useRas)
            ras.push(rec.pc + cfg.instBytes);

        // ---- warm-up boundary ---------------------------------------
        if (!warm &&
            walker.instructionCount() >= result.warmupInstructions) {
            warm = true;
            icache->resetStats();
            btb->resetStats();
            result.condBranches = 0;
            result.condMispredicts = 0;
            result.btbTargetMismatches = 0;
            result.rasReturns = 0;
            result.rasMispredicts = 0;
            result.indirectBranches = 0;
            result.indirectMispredicts = 0;
        }
    }

    result.measuredInstructions =
        walker.instructionCount() >= result.warmupInstructions
            ? walker.instructionCount() - result.warmupInstructions
            : 0;
    result.icache = icache->accessStats();
    result.btb = btb->accessStats();
    result.icacheMpki = result.icache.mpki(result.measuredInstructions);
    result.btbMpki = result.btb.mpki(result.measuredInstructions);

    if (icacheDuel) {
        result.hasDuel = true;
        result.icacheDuel = icacheDuel->telemetry();
    }
    if (btbDuel)
        result.btbDuel = btbDuel->telemetry();

    if (icacheEff)
        icacheEff->finalize(icache->ticks());
    if (btbEff)
        btbEff->finalize(btb->cacheModel().ticks());

    return result;
}

FrontendResult
simulateTrace(const FrontendConfig &config, const trace::Trace &tr)
{
    FrontendSim sim(config);
    return sim.run(tr);
}

FrontendResult
simulateDecoded(const FrontendConfig &config,
                const trace::DecodedTrace &decoded)
{
    FrontendSim sim(config);
    return sim.run(decoded);
}

void
resolveDirectionStream(trace::DecodedTrace &dec, DirectionKind kind)
{
    const std::size_t n = dec.numRecords();
    std::vector<std::uint8_t> pred(n, 0);
    // Feed the predictor exactly the sequence a leg would: predict then
    // update, conditional branches only.
    const std::unique_ptr<branch::DirectionPredictor> direction =
        makeDirection(kind);
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t meta = dec.brMeta[i];
        if (!trace::branch_meta::conditional(meta))
            continue;
        pred[i] = direction->predict(dec.brPc[i]) ? 1 : 0;
        direction->update(dec.brPc[i], trace::branch_meta::taken(meta));
    }
    dec.dirPredictedTaken = std::move(pred);
    dec.directionKind = static_cast<int>(kind);
}

} // namespace ghrp::frontend

/**
 * @file
 * Fused multi-policy executor: simulate N replacement policies over
 * ONE walk of a shared decoded fetch-op stream. Each policy is an
 * independent lane (its own FrontendSim — tag stores, predictors, RAS
 * and counters), and the walk is chunked so a chunk of the decoded
 * SoA stream is pulled from memory once and then replayed to every
 * lane while it is still cache-hot, turning the per-leg memory-bound
 * re-read into a compute-dense pass.
 *
 * Correctness contract: lanes never share mutable state and each lane
 * consumes records through the exact FrontendSim stepwise interface a
 * per-leg run uses, so fused results are bit-identical to running the
 * legs one at a time — the fused differential and property tests
 * enforce that for every policy, geometry and direction-stream
 * mismatch (lanes whose configured direction predictor does not match
 * the stream fall back to simulating their predictor live, exactly as
 * a per-leg run would).
 */

#ifndef GHRP_FRONTEND_FUSED_HH
#define GHRP_FRONTEND_FUSED_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "frontend/frontend.hh"

namespace ghrp::frontend
{

/**
 * N policy lanes over one decoded stream. Construct with the shared
 * base configuration (geometry, direction predictor, warm-up — the
 * policy field is overridden per lane) and the lane policies; run()
 * walks the stream once and returns per-lane results in lane order.
 */
class FusedSim
{
  public:
    /**
     * Records fed to every lane per chunk. Sized so one chunk of the
     * decoded SoA stream (~34 B/record plus its fetch ops) stays
     * resident in L2 while every lane consumes it.
     */
    static constexpr std::size_t kChunkRecords = 2048;

    FusedSim(const FrontendConfig &base,
             const std::vector<PolicySpec> &policies);

    /** Number of lanes. */
    std::size_t numLanes() const { return lanes.size(); }

    /**
     * Simulate @p decoded once for every lane. A FusedSim instance is
     * good for one run, like FrontendSim. Results are in the order the
     * policies were given to the constructor.
     */
    std::vector<FrontendResult> run(const trace::DecodedTrace &decoded);

  private:
    std::vector<std::unique_ptr<FrontendSim>> lanes;
};

/**
 * Convenience: simulate @p decoded under every policy in @p policies
 * in one fused pass. Bit-identical to calling simulateDecoded once
 * per policy.
 */
std::vector<FrontendResult>
simulateFused(const FrontendConfig &base,
              const std::vector<PolicySpec> &policies,
              const trace::DecodedTrace &decoded);

} // namespace ghrp::frontend

#endif // GHRP_FRONTEND_FUSED_HH

/**
 * @file
 * Trace-driven decoupled front-end simulator: replays a branch trace,
 * reconstructs the fetch-block stream, and drives the I-cache, BTB,
 * direction predictor, return address stack and (for GHRP) the shared
 * dead-block predictor. Not cycle accurate — MPKI is the figure of
 * merit, as in the paper (Section IV-A).
 */

#ifndef GHRP_FRONTEND_FRONTEND_HH
#define GHRP_FRONTEND_FRONTEND_HH

#include <memory>
#include <string>
#include <vector>

#include "branch/btb.hh"
#include "branch/direction.hh"
#include "branch/indirect.hh"
#include "branch/ras.hh"
#include "cache/cache.hh"
#include "cache/config.hh"
#include "cache/duel_policy.hh"
#include "predictor/ghrp.hh"
#include "predictor/sdbp.hh"
#include "predictor/ship.hh"
#include "stats/efficiency.hh"
#include "trace/branch_record.hh"
#include "trace/decoded_trace.hh"

namespace ghrp::frontend
{

/** Replacement policies the harness can instantiate. */
enum class PolicyKind : std::uint8_t
{
    Lru,
    Random,
    Fifo,
    Srrip,
    Brrip,
    Drrip,
    Sdbp,
    Ship,  ///< SHiP [Wu et al. 2011], extension baseline
    Ghrp,
    /** Set-dueling meta-policy composing two of the kinds above; must
     *  stay the LAST enumerator so duel legs sort after every static
     *  policy in result maps and report leg order. Parameterized by
     *  PolicySpec, never used bare. */
    Duel
};

/** Display name ("LRU", "GHRP", ...). */
const char *policyName(PolicyKind kind);

/** Parse a static policy name (case-insensitive); fatal() on error.
 *  Rejects "duel:..." specs — use parsePolicySpec for those. */
PolicyKind parsePolicy(const std::string &name);

/** The five policies evaluated in the paper's figures. */
inline constexpr PolicyKind paperPolicies[] = {
    PolicyKind::Lru, PolicyKind::Random, PolicyKind::Srrip,
    PolicyKind::Sdbp, PolicyKind::Ghrp};

/** Every static (non-meta) policy kind, in registry order. */
const std::vector<PolicyKind> &allPolicyKinds();

/**
 * One entry of a suite's policy axis: a static policy kind, or a
 * `duel:<A>,<B>[,psel=N,leaders=K]` set-dueling spec composing two
 * static kinds. Implicitly convertible from PolicyKind so existing
 * call sites (result-map lookups, config assignment) keep compiling;
 * the duel parameters are meaningful only when kind == Duel and are
 * ignored by comparison/naming otherwise.
 */
struct PolicySpec
{
    PolicyKind kind = PolicyKind::Lru;
    PolicyKind duelA = PolicyKind::Ghrp;  ///< leader-set policy A
    PolicyKind duelB = PolicyKind::Lru;   ///< leader-set policy B
    std::uint32_t duelPselMax = 1023;     ///< PSEL saturation bound
    std::uint32_t duelLeaders = 32;       ///< leader sets per policy

    PolicySpec() = default;
    /*implicit*/ PolicySpec(PolicyKind k) : kind(k) {}

    bool isDuel() const { return kind == PolicyKind::Duel; }

    /** True when any constituent (or the spec itself) is GHRP, i.e.
     *  the front-end must build the shared dead-block predictor. */
    bool
    involvesGhrp() const
    {
        if (kind == PolicyKind::Ghrp)
            return true;
        return isDuel() && (duelA == PolicyKind::Ghrp ||
                            duelB == PolicyKind::Ghrp);
    }
};

bool operator==(const PolicySpec &a, const PolicySpec &b);
bool operator<(const PolicySpec &a, const PolicySpec &b);
inline bool
operator!=(const PolicySpec &a, const PolicySpec &b)
{
    return !(a == b);
}

/** Canonical display name: the kind's name, or "duel:GHRP,LRU" with
 *  ",psel=N" / ",leaders=K" suffixes only when non-default. */
std::string policyName(const PolicySpec &spec);

/** Parse a policy name or duel spec; fatal() on error. */
PolicySpec parsePolicySpec(const std::string &name);

/** Non-fatal parse for daemons/report readers: returns false instead
 *  of exiting on an unknown name or malformed duel spec. */
bool tryParsePolicySpec(const std::string &name, PolicySpec &out);

/**
 * Parse a comma-separated policy list, duel-aware: a `duel:` token
 * absorbs the following token (its second constituent) plus any
 * subsequent `psel=` / `leaders=` tokens, so "GHRP,duel:GHRP,LRU,
 * psel=511,SRRIP" yields {GHRP, duel:GHRP,LRU,psel=511, SRRIP}.
 * fatal() on error.
 */
std::vector<PolicySpec> parsePolicyList(const std::string &csv);

/** Direction predictors available to the front-end. */
enum class DirectionKind : std::uint8_t
{
    HashedPerceptron,  ///< the paper's predictor
    Gshare,
    Bimodal
};

/** Front-end configuration. */
struct FrontendConfig
{
    cache::CacheConfig icache = cache::CacheConfig::icache(64, 8);
    cache::CacheConfig btb = cache::CacheConfig::btb(4096, 4);
    PolicySpec policy = PolicyKind::Lru;
    DirectionKind direction = DirectionKind::HashedPerceptron;

    predictor::GhrpConfig ghrp;
    predictor::SdbpConfig sdbp;
    predictor::ShipConfig ship;

    bool useRas = true;  ///< returns predicted by the RAS, not the BTB

    /**
     * Attach the path-history-indexed indirect target predictor (the
     * paper's future-work extension). When off, indirect targets come
     * from the BTB's last-seen target.
     */
    bool useIndirectPredictor = false;
    branch::IndirectConfig indirect;

    /** Warm-up: first min(fraction * total, cap) instructions excluded
     *  from the reported statistics (paper Section IV-C). */
    double warmupFraction = 0.5;
    std::uint64_t warmupCapInstructions = 200'000'000;

    /**
     * Use the stand-alone BTB GHRP (own tables, history and per-entry
     * signatures) instead of the paper's shared-metadata coupling —
     * the "dedicated vs shared" ablation of Section III-E.
     */
    bool ghrpDedicatedBtb = false;

    /** Speculative-history recovery on mispredictions (Section III-F);
     *  disabling it is an ablation. */
    bool recoverGhrpHistory = true;
    /** Wrong-path fetch addresses injected into the speculative
     *  history per misprediction, before recovery. */
    std::uint32_t wrongPathNoise = 3;

    /**
     * Next-line instruction prefetch degree: on a demand I-cache miss,
     * prefetch the following N sequential blocks (0 = off, the paper's
     * configuration). Interacts with replacement: prefetched blocks
     * that are dead-on-arrival pollute exactly like scan traffic.
     */
    std::uint32_t nextLinePrefetch = 0;

    bool trackEfficiency = false;  ///< attach heat-map trackers
    std::uint32_t instBytes = 4;

    /**
     * Phase flight recorder: sample one windowed telemetry record
     * every this many instructions (0 = off, the default). Records
     * carry *interval* counts (I-cache/BTB misses, mispredictions,
     * dead-block prediction outcomes, duel PSEL) and are bounded by a
     * 128-slot decimating sampler, so memory stays O(1) per leg and
     * the trajectory is a pure function of the access stream —
     * bit-identical across --jobs, fused lanes, crash resume and
     * sweep shard merges.
     */
    std::uint64_t phaseWindow = 0;
};

/**
 * One committed flight-recorder window: interval (not cumulative)
 * counts over `window` raw instructions — or, after decimation, over a
 * stride-sized group of raw windows ending at this record.
 */
struct PhaseRecord
{
    std::uint64_t window = 0;        ///< raw window ordinal (0-based)
    std::uint64_t instructions = 0;  ///< cumulative instructions at commit

    std::uint64_t icacheAccesses = 0;
    std::uint64_t icacheMisses = 0;
    std::uint64_t icacheEvictions = 0;
    std::uint64_t btbAccesses = 0;
    std::uint64_t btbMisses = 0;
    std::uint64_t btbEvictions = 0;

    std::uint64_t condBranches = 0;
    std::uint64_t condMispredicts = 0;
    std::uint64_t btbTargetMismatches = 0;

    /** Dead-block predictor outcomes, I-cache + BTB policies combined
     *  (all zeros under predictor-less policies). */
    std::uint64_t deadHits = 0;
    std::uint64_t liveHits = 0;
    std::uint64_t deadEvictions = 0;
    std::uint64_t liveEvictions = 0;

    /** I-cache duel PSEL at commit time (0 for non-duel legs). */
    std::int64_t psel = 0;
};

/** Flight-recorder record bound per leg: when a trajectory would grow
 *  past this, adjacent records merge pairwise and the stride doubles,
 *  so any run length fits in O(1) memory. */
inline constexpr std::size_t kPhaseTrajectoryCapacity = 128;

/** The per-leg phase trajectory harvested by the flight recorder. */
struct PhaseTrajectory
{
    std::uint64_t window = 0;  ///< raw window size, instructions
    std::uint64_t stride = 1;  ///< raw windows per record after decimation
    std::vector<PhaseRecord> records;
};

/** Results of one simulation. */
struct FrontendResult
{
    std::string traceName;
    std::string policy;

    std::uint64_t totalInstructions = 0;
    std::uint64_t warmupInstructions = 0;
    std::uint64_t measuredInstructions = 0;

    stats::AccessStats icache;  ///< post-warm-up
    stats::AccessStats btb;     ///< post-warm-up (taken branches)
    double icacheMpki = 0.0;
    double btbMpki = 0.0;

    std::uint64_t condBranches = 0;
    std::uint64_t condMispredicts = 0;
    std::uint64_t btbTargetMismatches = 0;
    std::uint64_t rasReturns = 0;
    std::uint64_t rasMispredicts = 0;
    std::uint64_t indirectBranches = 0;      ///< taken indirect branches
    std::uint64_t indirectMispredicts = 0;   ///< wrong/missing target

    /** Set-dueling statistics, present only when the leg ran a
     *  duel:<A>,<B> meta-policy (hasDuel). */
    bool hasDuel = false;
    cache::DuelTelemetry icacheDuel;
    cache::DuelTelemetry btbDuel;

    /** Phase flight recorder trajectory, present only when the leg ran
     *  with a non-zero phaseWindow (hasPhases). */
    bool hasPhases = false;
    PhaseTrajectory phases;

    /** Indirect target mispredictions per 1000 instructions. */
    double
    indirectMpki() const
    {
        return measuredInstructions
                   ? static_cast<double>(indirectMispredicts) * 1000.0 /
                         static_cast<double>(measuredInstructions)
                   : 0.0;
    }

    double
    mispredictRate() const
    {
        return condBranches
                   ? static_cast<double>(condMispredicts) / condBranches
                   : 0.0;
    }
};

/**
 * The simulator. Construct once per (config, trace) run; the
 * structures are warm only within a single run() call.
 */
class FrontendSim
{
  public:
    explicit FrontendSim(const FrontendConfig &config);
    ~FrontendSim();

    /**
     * Simulate one decoded fetch-op stream and return the post-warm-up
     * statistics. This is the hot path: no fetch-stream walking, no
     * per-block callback dispatch and no separate instruction-count
     * pass — all of that happened once, in decodeTrace(). The decode
     * granularity must match the configuration (asserted).
     */
    FrontendResult run(const trace::DecodedTrace &decoded);

    /** Simulate one trace: decodes once, then runs the decoded path. */
    FrontendResult run(const trace::Trace &trace);

    /**
     * Reference implementation: replay the branch records through
     * FetchStreamWalker directly, exactly as the simulator did before
     * the decode-once layer. Kept as an independently-coded oracle for
     * the differential tests and the decode-overhead benchmark; results
     * are bit-identical to run() on any trace.
     */
    FrontendResult runWalker(const trace::Trace &trace);

    /**
     * Stepwise interface under run(DecodedTrace): beginRun() primes a
     * fresh simulation of @p decoded, stepRecord() consumes record i
     * (records must be fed in order, exactly once each), finishRun()
     * seals and returns the statistics. run(decoded) is exactly
     * beginRun + stepRecord(0..n) + finishRun; the fused executor uses
     * the pieces directly to interleave many policy lanes over one
     * chunked walk of the shared stream, which is why results are
     * bit-identical to a per-leg run by construction. Like run(), a
     * sim instance is good for one begin/finish cycle.
     */
    void beginRun(const trace::DecodedTrace &decoded);
    void stepRecord(const trace::DecodedTrace &decoded, std::size_t i);
    FrontendResult finishRun();

    /** Heat-map trackers (non-null only when trackEfficiency). */
    stats::EfficiencyTracker *icacheTracker() { return icacheEff.get(); }
    stats::EfficiencyTracker *btbTracker() { return btbEff.get(); }

    /** Underlying structures, for white-box tests. */
    cache::CacheModel<cache::NoPayload> &icacheModel() { return *icache; }
    branch::Btb &btbModel() { return *btb; }

  private:
    FrontendConfig cfg;

    std::unique_ptr<predictor::GhrpPredictor> ghrpPredictor;
    predictor::GhrpReplacement *icacheGhrp = nullptr;  ///< borrowed
    cache::DuelPolicy *icacheDuel = nullptr;           ///< borrowed
    cache::DuelPolicy *btbDuel = nullptr;              ///< borrowed

    std::unique_ptr<cache::CacheModel<cache::NoPayload>> icache;
    std::unique_ptr<branch::Btb> btb;
    std::unique_ptr<branch::DirectionPredictor> direction;
    std::unique_ptr<branch::IndirectPredictor> indirect;
    branch::ReturnAddressStack ras;

    std::unique_ptr<stats::EfficiencyTracker> icacheEff;
    std::unique_ptr<stats::EfficiencyTracker> btbEff;

    /** In-flight state of a beginRun/stepRecord/finishRun cycle. */
    FrontendResult pending;
    bool pendingWarm = false;
    bool pendingPreResolved = false;
    Addr pendingBlockMask = 0;

    // ---- phase flight recorder (see FrontendConfig::phaseWindow) ----
    /** Cumulative counters at @p out, read from the live structures. */
    void phaseCapture(PhaseRecord &out) const;
    /** Fold counts about to be discarded by a stats reset into the
     *  carry, then rebase the snapshot on the post-reset values. */
    void phaseFoldReset();
    /** Close the raw window ending at @p cum instructions. */
    void phaseSample(std::uint64_t cum);

    std::uint64_t phaseNextBoundary = ~std::uint64_t{0};
    std::uint64_t phaseWindowId = 0;
    std::uint64_t phaseStride = 1;
    std::uint64_t phasePendingCount = 0;
    PhaseRecord phasePending;   ///< stride-group being accumulated
    PhaseRecord phaseSnapshot;  ///< cumulative counters at last boundary
    PhaseRecord phaseCarry;     ///< counts folded across stats resets
    std::vector<PhaseRecord> phaseRecords;
};

/**
 * Convenience: simulate @p trace under @p config and return results.
 */
FrontendResult simulateTrace(const FrontendConfig &config,
                             const trace::Trace &trace);

/**
 * Convenience: simulate a pre-decoded stream under @p config. Use this
 * when several policy legs share one trace — decode once, run many.
 */
FrontendResult simulateDecoded(const FrontendConfig &config,
                               const trace::DecodedTrace &decoded);

/**
 * Resolve the direction-predictor stream of @p dec once: run the
 * @p kind predictor over the conditional-branch sequence and store the
 * per-record predicted-taken bit in the decoded trace. Legs configured
 * with the same predictor kind then read the bit instead of
 * re-simulating the predictor — the predictor only ever observes the
 * branch records, so the bits are exactly what a live predictor would
 * produce and simulation results are unchanged.
 */
void resolveDirectionStream(trace::DecodedTrace &dec, DirectionKind kind);

} // namespace ghrp::frontend

#endif // GHRP_FRONTEND_FRONTEND_HH
